//! Property tests: the chunked 8-lane kernels agree with their scalar
//! references on adversarial segment layouts — empty segments, runs of
//! singletons, and huge segments — within a reassociation tolerance on
//! the order of 1 ULP per accumulated element. Elementwise and
//! index-driven kernels must match bit-for-bit.
//!
//! Mode flips go through the process-global kernel mode, so every test
//! in this binary serializes on `MODE_LOCK` and restores the ambient
//! mode (which honours `DGR_KERNELS`) before releasing it.

use std::sync::Mutex;

use dgr_autodiff::kernels;
use dgr_autodiff::{kernel_mode, set_kernel_mode, KernelMode};
use proptest::prelude::*;

static MODE_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` under the given kernel mode, holding the lock so parallel
/// tests in this binary cannot observe the flip.
fn with_mode<T>(mode: KernelMode, f: impl FnOnce() -> T) -> T {
    let _guard = MODE_LOCK.lock().unwrap();
    let prev = kernel_mode();
    set_kernel_mode(mode);
    let out = f();
    set_kernel_mode(prev);
    out
}

/// Distance in representable f32 steps (monotonic bit mapping), `u64`
/// so NaN/infinity mismatches simply read as enormous.
fn ulps(a: f32, b: f32) -> u64 {
    let ord = |x: f32| -> i64 {
        let i = x.to_bits() as i32;
        (if i < 0 { i32::MIN - i } else { i }) as i64
    };
    ord(a).abs_diff(ord(b))
}

/// Reassociation-tolerant comparison: exact, within `abs_tol`, or
/// within a ULP budget that grows with the reduction length.
fn close(a: f32, b: f32, len: usize, abs_tol: f32) -> bool {
    a == b || (a - b).abs() <= abs_tol || ulps(a, b) <= 8 + len as u64
}

/// Adversarial segment-length mix: mostly empty/singleton/small, with
/// an occasional huge segment.
fn seg_lens() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(
        prop_oneof![
            3 => Just(0usize),
            3 => Just(1usize),
            3 => 2usize..9,
            1 => 900usize..1100,
        ],
        1..12,
    )
}

/// Deterministic pseudo-random values in (-16, 16): the proptest input
/// is the adversarial *layout*; values just need to be varied and
/// reproducible without threading a runner through helper strategies.
fn pseudo(n: usize, salt: u64) -> Vec<f32> {
    (0..n as u64)
        .map(|i| {
            let h = i
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(salt.wrapping_mul(0xD134_2543_DE82_EF95))
                .rotate_left(17);
            ((h % 32768) as f32 / 32768.0) * 32.0 - 16.0
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sum_and_dot_parity(lens in seg_lens(), seed in 0u64..1000) {
        let total: usize = lens.iter().sum();
        let x = pseudo(total, seed);
        let w = pseudo(total, seed ^ 0xABCD);
        let mut at = 0;
        for &len in &lens {
            let xs = &x[at..at + len];
            let ws = &w[at..at + len];
            at += len;
            let (s0, d0) = (kernels::sum_scalar(xs), kernels::dot_scalar(xs, ws));
            let (s1, d1) = (kernels::sum_chunked(xs), kernels::dot_chunked(xs, ws));
            // Sound bound: reassociation error ≤ n·ε·Σ|terms|.
            let norm: f32 = xs.iter().map(|v| v.abs()).sum();
            prop_assert!(
                close(s0, s1, len, f32::EPSILON * norm * len.max(1) as f32),
                "sum mismatch on segment of {len}: {s0} vs {s1}"
            );
            let dnorm: f32 = xs.iter().zip(ws).map(|(a, b)| (a * b).abs()).sum();
            prop_assert!(
                close(d0, d1, len, f32::EPSILON * dnorm * len.max(1) as f32),
                "dot mismatch on segment of {len}: {d0} vs {d1}"
            );
        }
    }

    #[test]
    fn seg_softmax_parity(lens in seg_lens(), seed in 0u64..1000) {
        let total: usize = lens.iter().sum();
        let x = pseudo(total, seed);
        let gout = pseudo(total, seed ^ 0x5EED);
        let mut p_s = vec![0.0f32; total];
        let mut p_c = vec![0.0f32; total];
        let mut gx_s = vec![0.0f32; total];
        let mut gx_c = vec![0.0f32; total];
        let mut at = 0;
        for &len in &lens {
            let r = at..at + len;
            at += len;
            kernels::softmax_into_scalar(&x[r.clone()], &mut p_s[r.clone()]);
            kernels::softmax_into_chunked(&x[r.clone()], &mut p_c[r.clone()]);
            for j in r.clone() {
                prop_assert!(
                    close(p_s[j], p_c[j], len, f32::EPSILON * len as f32),
                    "softmax[{j}] mismatch in segment of {len}: {} vs {}",
                    p_s[j], p_c[j]
                );
            }
            // Backward differs only through the mode-dispatched dot; run
            // it under each mode against that mode's forward output.
            with_mode(KernelMode::Scalar, || {
                kernels::seg_softmax_bwd(&p_s[r.clone()], &gout[r.clone()], &mut gx_s[r.clone()]);
            });
            with_mode(KernelMode::Chunked, || {
                kernels::seg_softmax_bwd(&p_c[r.clone()], &gout[r.clone()], &mut gx_c[r.clone()]);
            });
            let dnorm: f32 = gout[r.clone()].iter().zip(&p_s[r.clone()])
                .map(|(a, b)| (a * b).abs()).sum();
            for j in r {
                prop_assert!(
                    close(gx_s[j], gx_c[j], len,
                          f32::EPSILON * (1.0 + dnorm) * len.max(1) as f32),
                    "seg_softmax_bwd[{j}] mismatch in segment of {len}: {} vs {}",
                    gx_s[j], gx_c[j]
                );
            }
        }
    }

    #[test]
    fn gather_scatter_bit_identical(lens in seg_lens(), seed in 0u64..1000) {
        let total: usize = lens.iter().sum::<usize>().max(1);
        let x = pseudo(total, seed);
        let idx: Vec<u32> = (0..total)
            .map(|i| ((i * 2654435761) % total) as u32)
            .collect();
        let run = |mode| {
            with_mode(mode, || {
                let mut out = vec![0.0f32; total];
                let mut gx = vec![0.0f32; total];
                let mut acc = vec![0.0f32; total];
                kernels::gather_fwd(&mut out, &x, &idx);
                kernels::scatter_bwd(&mut gx, &x, &idx);
                kernels::scatter_add(&mut acc, &idx, &x);
                (out, gx, acc)
            })
        };
        let scalar = run(KernelMode::Scalar);
        let chunked = run(KernelMode::Chunked);
        // Index-driven kernels visit each output bin in the same order
        // in both modes, so they must agree bit-for-bit.
        prop_assert_eq!(scalar, chunked);
    }
}

#[test]
fn ambient_mode_honours_env() {
    let _guard = MODE_LOCK.lock().unwrap();
    let expect = match std::env::var("DGR_KERNELS") {
        Ok(s) if s.eq_ignore_ascii_case("scalar") => KernelMode::Scalar,
        _ => KernelMode::Chunked,
    };
    assert_eq!(kernel_mode(), expect);
}
