//! Determinism properties of the parallel executor, at the whole-graph
//! level: random DGR-shaped tapes (segmented softmax → scatter-add →
//! quadratic overflow) executed under different thread configurations.
//!
//! Contract under test (see `parallel` module docs):
//! * a fixed thread count is **bit-reproducible**, run to run;
//! * different thread counts agree up to float associativity;
//! * results are continuous across the `PAR_THRESHOLD` sequential/parallel
//!   boundary (±1 element).

use std::sync::{Arc, Mutex};

use dgr_autodiff::parallel::{self, par_map_mut, par_scatter_add, par_sum, PAR_THRESHOLD};
use dgr_autodiff::{Graph, Segments};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// `set_num_threads` is process-global; tests that touch it serialize.
static THREADS_LOCK: Mutex<()> = Mutex::new(());

/// Builds a random DGR-shaped tape and runs one forward + backward sweep
/// at the given thread count. Returns the loss and the parameter gradient.
fn run_once(groups: usize, group: usize, seed: u64, threads: usize) -> (f32, Vec<f32>) {
    parallel::set_num_threads(threads);
    let n = groups * group;
    let buckets = (n / 7).max(1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::new();
    let w = g.param((0..n).map(|_| rng.gen_range(-2.0f32..2.0)).collect());
    let seg = Arc::new(Segments::uniform(groups, group));
    let p = g.segmented_softmax(w, seg);
    let idx: Arc<Vec<u32>> = Arc::new((0..n).map(|_| rng.gen_range(0..buckets as u32)).collect());
    let d = g.scatter_add(p, idx, buckets);
    let sq = g.mul(d, d);
    let loss = g.sum_all(sq);
    g.forward();
    g.backward(loss);
    let out = (g.value(loss)[0], g.grad(w).to_vec());
    parallel::set_num_threads(0);
    out
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Same seed, same thread count (4), two runs: bit-identical loss and
    /// gradients. Sizes straddle `PAR_THRESHOLD` so both the sequential
    /// and the pooled code paths are exercised.
    #[test]
    fn fixed_thread_count_is_bit_reproducible(
        groups in 1000usize..20_000,
        group in 2usize..6,
        seed in 0u64..10_000,
    ) {
        let _guard = THREADS_LOCK.lock().unwrap();
        let (loss_a, grad_a) = run_once(groups, group, seed, 4);
        let (loss_b, grad_b) = run_once(groups, group, seed, 4);
        prop_assert_eq!(loss_a.to_bits(), loss_b.to_bits());
        prop_assert_eq!(bits(&grad_a), bits(&grad_b));
    }

    /// One thread vs four: reductions reorder float sums, so results agree
    /// only up to associativity — but tightly.
    #[test]
    fn thread_counts_agree_within_tolerance(
        groups in 1000usize..20_000,
        group in 2usize..6,
        seed in 0u64..10_000,
    ) {
        let _guard = THREADS_LOCK.lock().unwrap();
        let (loss_1, grad_1) = run_once(groups, group, seed, 1);
        let (loss_4, grad_4) = run_once(groups, group, seed, 4);
        let tol = |a: f32, b: f32| (a - b).abs() <= 1e-3 * a.abs().max(1.0);
        prop_assert!(tol(loss_1, loss_4), "loss {} vs {}", loss_1, loss_4);
        for (a, b) in grad_1.iter().zip(&grad_4) {
            prop_assert!(tol(*a, *b), "grad {} vs {}", a, b);
        }
    }
}

/// Counters incremented concurrently from pool worker threads must sum
/// exactly (relaxed `fetch_add` loses nothing), and the pool's own
/// dispatch metrics must stay consistent: every dispatched job is claimed
/// as at least one chunk.
#[test]
fn pool_counter_increments_sum_exactly() {
    let _guard = THREADS_LOCK.lock().unwrap();
    let len = PAR_THRESHOLD * 4;
    let touched = dgr_obs::counter("test.pool_touched");
    parallel::set_num_threads(4);
    dgr_obs::set_enabled(true);
    let before_jobs = dgr_obs::counter("pool.jobs_dispatched").get();
    let before_chunks = dgr_obs::counter("pool.chunks_claimed").get();
    let base = touched.get();
    let rounds = 8usize;
    let mut buf = vec![0.0f32; len];
    for _ in 0..rounds {
        par_map_mut(&mut buf, |i, v| {
            touched.add(1);
            *v = i as f32;
        });
    }
    dgr_obs::set_enabled(false);
    parallel::set_num_threads(0);
    assert_eq!(
        touched.get() - base,
        (rounds * len) as u64,
        "lost counter increments under concurrency"
    );
    let jobs = dgr_obs::counter("pool.jobs_dispatched").get() - before_jobs;
    let chunks = dgr_obs::counter("pool.chunks_claimed").get() - before_chunks;
    assert_eq!(jobs, rounds as u64, "one dispatched job per par_map_mut");
    assert!(
        chunks >= jobs,
        "every job is claimed as at least one chunk ({chunks} < {jobs})"
    );
}

/// The sequential/parallel switch sits at exactly `PAR_THRESHOLD`
/// elements: pure maps must be bit-identical on both sides of it (and to
/// the plain sequential loop), and reductions must stay within
/// associativity tolerance across the boundary.
#[test]
fn par_threshold_boundary_is_seamless() {
    let _guard = THREADS_LOCK.lock().unwrap();
    for len in [PAR_THRESHOLD - 1, PAR_THRESHOLD, PAR_THRESHOLD + 1] {
        let src: Vec<f32> = (0..len)
            .map(|i| ((i % 251) as f32) * 0.321 - 40.0)
            .collect();

        // Pure map: bit-identical to the sequential loop at any count.
        parallel::set_num_threads(4);
        let mut mapped = vec![0.0f32; len];
        par_map_mut(&mut mapped, |i, v| *v = src[i] * 1.5 + 2.0);
        parallel::set_num_threads(0);
        for (i, v) in mapped.iter().enumerate() {
            assert_eq!(*v, src[i] * 1.5 + 2.0, "map diverged at len {len}, i {i}");
        }

        // Reductions: fixed count bit-stable, boundary within tolerance.
        parallel::set_num_threads(4);
        let s4a = par_sum(&src);
        let s4b = par_sum(&src);
        parallel::set_num_threads(1);
        let s1 = par_sum(&src);
        parallel::set_num_threads(0);
        assert_eq!(s4a.to_bits(), s4b.to_bits(), "sum unstable at len {len}");
        assert!(
            (s4a - s1).abs() <= 1e-3 * s1.abs().max(1.0),
            "sum {s4a} vs {s1} at len {len}"
        );

        // Scatter-add: fixed count bit-stable across the boundary too.
        let idx: Vec<u32> = (0..len).map(|i| ((i * 31) % 997) as u32).collect();
        parallel::set_num_threads(4);
        let mut out_a = vec![0.0f32; 997];
        par_scatter_add(&mut out_a, &idx, &src);
        let mut out_b = vec![0.0f32; 997];
        par_scatter_add(&mut out_b, &idx, &src);
        parallel::set_num_threads(0);
        assert_eq!(bits(&out_a), bits(&out_b), "scatter unstable at len {len}");
    }
}
