//! Finite-difference spot-checks of the Gumbel-softmax path at extreme
//! temperatures.
//!
//! The relaxation computes `softmax((w + gumbel_noise) / τ)` per group.
//! As τ → 0 the softmax saturates to a hard argmax (gradients collapse
//! toward 0 almost everywhere); as τ grows it flattens toward uniform.
//! Both regimes are numerically delicate — saturation divides by a tiny
//! τ before exponentiating, flattening loses signal to round-off — so
//! the tape is checked against f64 central differences of a
//! self-contained reference at τ = 1e-3 and τ = 1e3.

use std::sync::Arc;

use dgr_autodiff::gumbel::fill_gumbel;
use dgr_autodiff::{Activation, Graph, Segments, VarId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const GROUPS: usize = 4;
const GROUP: usize = 3;
const N: usize = GROUPS * GROUP;

/// Tape: loss = Σ sigmoid(weights · softmax((w + noise)/τ)) — the same op
/// chain the router's relaxation uses (scale → softmax → dot → activate).
fn build_tape(w0: &[f32], noise: &[f32], weights: &[f32], tau: f32) -> (Graph, VarId, VarId) {
    let mut g = Graph::new();
    let w = g.param(w0.to_vec());
    let z = g.add_const(w, Arc::new(noise.to_vec()));
    let zt = g.scale(z, 1.0 / tau);
    let p = g.segmented_softmax(zt, Arc::new(Segments::uniform(GROUPS, GROUP)));
    let s = g.dot_const(p, Arc::new(weights.to_vec()));
    let a = g.activate(s, Activation::Sigmoid);
    let loss = g.sum_all(a);
    (g, w, loss)
}

/// Self-contained f64 reference of the same function.
fn reference_loss(w: &[f32], noise: &[f32], weights: &[f32], tau: f64) -> f64 {
    let mut total = 0.0f64;
    let mut dot = 0.0f64;
    for grp in 0..GROUPS {
        let lo = grp * GROUP;
        let z: Vec<f64> = (lo..lo + GROUP)
            .map(|i| (w[i] as f64 + noise[i] as f64) / tau)
            .collect();
        let m = z.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let e: Vec<f64> = z.iter().map(|&v| (v - m).exp()).collect();
        let sum: f64 = e.iter().sum();
        for (k, &ek) in e.iter().enumerate() {
            dot += ek / sum * weights[lo + k] as f64;
        }
    }
    total += 1.0 / (1.0 + (-dot).exp());
    total
}

fn run_extreme(tau: f32, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let w0: Vec<f32> = (0..N).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    let mut noise = vec![0.0f32; N];
    fill_gumbel(&mut rng, &mut noise);
    let weights: Vec<f32> = (0..N).map(|_| rng.gen_range(0.5f32..2.0)).collect();

    let (mut g, w, loss) = build_tape(&w0, &noise, &weights, tau);
    g.forward();
    g.backward(loss);
    let tape_loss = g.value(loss)[0] as f64;
    let grad = g.grad(w).to_vec();

    let ref_loss = reference_loss(&w0, &noise, &weights, tau as f64);
    assert!(
        (tape_loss - ref_loss).abs() <= 1e-4 * ref_loss.abs().max(1.0),
        "τ={tau}: tape loss {tape_loss} ≠ reference {ref_loss}"
    );

    // τ-scaled FD step: the function varies on a scale proportional to τ,
    // so a fixed step would straddle the argmax switch at tiny τ.
    let h = (1e-3 * tau) as f64;
    for j in 0..N {
        assert!(grad[j].is_finite(), "τ={tau}: grad[{j}] not finite");
        let mut plus = w0.clone();
        let mut minus = w0.clone();
        plus[j] += h as f32;
        minus[j] -= h as f32;
        let fd = (reference_loss(&plus, &noise, &weights, tau as f64)
            - reference_loss(&minus, &noise, &weights, tau as f64))
            / (2.0 * h);
        // relative bound with an absolute floor: at τ→0 both sides
        // saturate to ~0 and the relative error is meaningless
        let tol = 1e-3 * fd.abs().max(grad[j].abs() as f64).max(1e-6);
        assert!(
            (grad[j] as f64 - fd).abs() <= tol,
            "τ={tau}: ∂loss/∂w[{j}] tape {} ≠ central diff {fd}",
            grad[j]
        );
    }
}

/// τ → 0: hard argmax regime. Gradients must stay finite (no NaN from
/// the exp of huge logits) and match FD up to the saturation floor.
#[test]
fn gradients_survive_near_zero_temperature() {
    for seed in [1, 2, 3] {
        run_extreme(1e-3, seed);
    }
}

/// τ large: near-uniform regime. The softmax input is ~0 and the signal
/// is tiny; gradients must still track the reference.
#[test]
fn gradients_survive_large_temperature() {
    for seed in [1, 2, 3] {
        run_extreme(1e3, seed);
    }
}

/// The annealed grad at τ=1e-3 concentrates on each group's argmax: the
/// winning entry's probability is ≈ 1 and the rest ≈ 0.
#[test]
fn near_zero_temperature_saturates_to_argmax() {
    let mut rng = StdRng::seed_from_u64(7);
    let w0: Vec<f32> = (0..N).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    let noise = vec![0.0f32; N];
    let weights = vec![1.0f32; N];
    let (mut g, _w, _loss) = build_tape(&w0, &noise, &weights, 1e-3);
    g.forward();
    // p is node 3 in build order; recompute instead of poking internals
    for grp in 0..GROUPS {
        let lo = grp * GROUP;
        let zmax = (lo..lo + GROUP)
            .max_by(|&a, &b| w0[a].partial_cmp(&w0[b]).unwrap())
            .unwrap();
        // reference softmax at τ=1e-3 puts ≥ 0.999 mass on the argmax
        let z: Vec<f64> = (lo..lo + GROUP).map(|i| w0[i] as f64 / 1e-3).collect();
        let m = z.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let e: Vec<f64> = z.iter().map(|&v| (v - m).exp()).collect();
        let sum: f64 = e.iter().sum();
        assert!(e[zmax - lo] / sum >= 0.999);
    }
}
