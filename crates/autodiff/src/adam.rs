//! The Adam optimizer (Kingma & Ba 2015) — the update rule the paper uses
//! for its trainable logits.

use crate::graph::{Graph, VarId};
use crate::parallel::{self, SendPtr};

/// Adam state over a graph's trainable parameters.
///
/// Create it **after** all [`Graph::param`] calls: the moment buffers are
/// sized from the parameter list at construction.
///
/// # Examples
///
/// ```
/// use dgr_autodiff::{Adam, Graph};
///
/// let mut g = Graph::new();
/// let w = g.param(vec![5.0]);
/// let sq = g.mul(w, w);
/// let loss = g.sum_all(sq);
/// let mut adam = Adam::new(&g, 0.5);
/// for _ in 0..200 {
///     g.forward();
///     g.backward(loss);
///     adam.step(&mut g);
/// }
/// assert!(g.value(w)[0].abs() < 0.1);
/// ```
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    /// First-moment arena; parameter `k` owns
    /// `offsets[k]..offsets[k + 1]`.
    m: Vec<f32>,
    /// Second-moment arena, same layout as `m`.
    v: Vec<f32>,
    offsets: Vec<usize>,
    params: Vec<VarId>,
}

impl Adam {
    /// Creates an optimizer with the standard moments
    /// (`β₁ = 0.9, β₂ = 0.999, ε = 1e−8`) over `graph`'s current
    /// parameters.
    pub fn new(graph: &Graph, lr: f32) -> Self {
        let params = graph.params().to_vec();
        let mut offsets = Vec::with_capacity(params.len() + 1);
        let mut total = 0;
        for &p in &params {
            offsets.push(total);
            total += graph.len_of(p);
        }
        offsets.push(total);
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: vec![0.0; total],
            v: vec![0.0; total],
            offsets,
            params,
        }
    }

    /// Current learning rate.
    pub fn learning_rate(&self) -> f32 {
        self.lr
    }

    /// Updates the learning rate (e.g. for decay schedules).
    pub fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Applies one Adam update using the gradients currently stored in
    /// `graph` (i.e. call after [`Graph::backward`]).
    ///
    /// # Panics
    ///
    /// Panics if `graph` gained parameters after this optimizer was built.
    pub fn step(&mut self, graph: &mut Graph) {
        assert_eq!(
            graph.params().len(),
            self.params.len(),
            "graph parameters changed after Adam construction"
        );
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        let (lr, b1, b2, eps) = (self.lr, self.beta1, self.beta2, self.eps);
        for (k, &p) in self.params.iter().enumerate() {
            let r = self.offsets[k]..self.offsets[k + 1];
            let m = &mut self.m[r.clone()];
            let v = &mut self.v[r];
            let (data, grad) = graph.val_grad_mut(p);
            let n = data.len();
            let (dp, mp, vp) = (
                SendPtr(data.as_mut_ptr()),
                SendPtr(m.as_mut_ptr()),
                SendPtr(v.as_mut_ptr()),
            );
            // Elementwise and index-partitioned: bit-stable at any thread
            // count. One fused pass reads the gradient once and updates
            // moments + parameters together.
            parallel::par_blocks(n, n, move |block| {
                let r = block.start..block.end;
                // SAFETY: blocks partition 0..n; each range is touched by
                // exactly one block and the buffers outlive the dispatch.
                let (d, m, v) = unsafe {
                    (
                        std::slice::from_raw_parts_mut(dp.get().add(r.start), r.len()),
                        std::slice::from_raw_parts_mut(mp.get().add(r.start), r.len()),
                        std::slice::from_raw_parts_mut(vp.get().add(r.start), r.len()),
                    )
                };
                crate::kernels::adam_update(d, m, v, &grad[r], lr, b1, b2, eps, bc1, bc2);
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Segments;
    use std::sync::Arc;

    #[test]
    fn minimizes_a_convex_bowl() {
        let mut g = Graph::new();
        let w = g.param(vec![3.0, -4.0]);
        let sq = g.mul(w, w);
        let loss = g.sum_all(sq);
        let mut adam = Adam::new(&g, 0.3);
        let mut last = f32::INFINITY;
        for i in 0..300 {
            g.forward();
            if i % 50 == 0 {
                assert!(g.value(loss)[0] <= last + 1e-3);
                last = g.value(loss)[0];
            }
            g.backward(loss);
            adam.step(&mut g);
        }
        g.forward();
        assert!(g.value(loss)[0] < 1e-3);
    }

    #[test]
    fn pushes_softmax_to_cheapest_choice() {
        // 3 choices with costs [5, 1, 3]: probability mass must land on 1.
        let mut g = Graph::new();
        let w = g.param(vec![0.0, 0.0, 0.0]);
        let seg = Arc::new(Segments::from_offsets(vec![0, 3]).unwrap());
        let p = g.segmented_softmax(w, seg);
        let loss = g.dot_const(p, Arc::new(vec![5.0, 1.0, 3.0]));
        let mut adam = Adam::new(&g, 0.2);
        for _ in 0..400 {
            g.forward();
            g.backward(loss);
            adam.step(&mut g);
        }
        g.forward();
        assert!(g.value(p)[1] > 0.95, "probabilities {:?}", g.value(p));
    }

    #[test]
    fn learning_rate_is_adjustable() {
        let mut g = Graph::new();
        let _ = g.param(vec![0.0]);
        let mut adam = Adam::new(&g, 0.5);
        assert_eq!(adam.learning_rate(), 0.5);
        adam.set_learning_rate(0.1);
        assert_eq!(adam.learning_rate(), 0.1);
        assert_eq!(adam.steps(), 0);
    }
}
