//! Gumbel(0, 1) noise for the stochastic softmax.
//!
//! Adding Gumbel noise to logits before a softmax ("Gumbel-softmax",
//! Jang et al. 2016) turns the deterministic relaxation into a stochastic
//! one, which the DGR paper uses to escape poor initializations. Noise is
//! resampled every iteration.

use rand::Rng;

/// Fills `out` with independent Gumbel(0, 1) samples:
/// `g = −ln(−ln u)`, `u ~ Uniform(0, 1)`.
///
/// The uniform draw is clamped away from 0 and 1 so the double logarithm
/// never produces `±∞`.
///
/// # Examples
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(7);
/// let mut noise = vec![0.0f32; 8];
/// dgr_autodiff::gumbel::fill_gumbel(&mut rng, &mut noise);
/// assert!(noise.iter().all(|g| g.is_finite()));
/// ```
pub fn fill_gumbel<R: Rng + ?Sized>(rng: &mut R, out: &mut [f32]) {
    const EPS: f64 = 1e-12;
    for v in out {
        let u: f64 = rng.gen_range(EPS..(1.0 - EPS));
        *v = (-(-u.ln()).ln()) as f32;
    }
}

/// Scales Gumbel noise by `weight` in place — `weight = 0` degrades the
/// Gumbel-softmax to a plain softmax (the ablation knob).
pub fn scale_noise(noise: &mut [f32], weight: f32) {
    for v in noise {
        *v *= weight;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_are_finite_and_varied() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut buf = vec![0.0f32; 10_000];
        fill_gumbel(&mut rng, &mut buf);
        assert!(buf.iter().all(|v| v.is_finite()));
        let distinct: std::collections::HashSet<u32> = buf.iter().map(|v| v.to_bits()).collect();
        assert!(distinct.len() > 9_000);
    }

    #[test]
    fn mean_approximates_euler_mascheroni() {
        // E[Gumbel(0,1)] = γ ≈ 0.5772
        let mut rng = StdRng::seed_from_u64(1);
        let mut buf = vec![0.0f32; 200_000];
        fill_gumbel(&mut rng, &mut buf);
        let mean: f64 = buf.iter().map(|&v| v as f64).sum::<f64>() / buf.len() as f64;
        assert!((mean - 0.5772).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = vec![0.0f32; 16];
        let mut b = vec![0.0f32; 16];
        fill_gumbel(&mut StdRng::seed_from_u64(9), &mut a);
        fill_gumbel(&mut StdRng::seed_from_u64(9), &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn zero_weight_silences_noise() {
        let mut buf = vec![1.5f32, -0.5, 2.0];
        scale_noise(&mut buf, 0.0);
        assert_eq!(buf, vec![0.0, 0.0, 0.0]);
    }
}
