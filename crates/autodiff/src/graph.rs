//! The op tape: build once, re-execute every training iteration.

use std::sync::Arc;

use crate::activation::Activation;
use crate::ops::Op;
use crate::parallel::{self, par_axpy, par_map_mut, par_scatter_add, SendPtr};
use crate::segments::Segments;
use crate::AutodiffError;

/// Handle to a tape variable (a dense `f32` buffer plus its gradient).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub(crate) u32);

impl VarId {
    /// Dense index into the tape.
    pub(crate) fn index(self) -> usize {
        self.0 as usize
    }
}

/// A statically-shaped computation graph over dense `f32` buffers.
///
/// Nodes are appended in topological order by construction — every op's
/// inputs must already exist. [`Graph::forward`] recomputes all values in
/// one sweep, [`Graph::backward`] accumulates gradients in a reverse
/// sweep. The graph is built **once** per routing problem and re-executed
/// every iteration (leaf buffers like Gumbel noise and the temperature are
/// updated in place via [`Graph::set_data`]), mirroring how DGR reuses its
/// PyTorch graph across iterations.
///
/// # Memory layout
///
/// All node values live in one contiguous `f32` arena, all gradients in a
/// second one, with a shared offset table (node `i` owns
/// `offsets[i]..offsets[i] + lens[i]` of both). The forward sweep walks
/// the value arena strictly left-to-right and the backward sweep
/// right-to-left, so consecutive ops touch adjacent cache lines instead
/// of chasing per-node heap allocations.
///
/// # Examples
///
/// ```
/// use dgr_autodiff::Graph;
/// use std::sync::Arc;
///
/// let mut g = Graph::new();
/// let x = g.param(vec![1.0, 2.0, 3.0]);
/// let y = g.scale(x, 2.0);
/// let loss = g.sum_all(y);
/// g.forward();
/// assert_eq!(g.value(loss)[0], 12.0);
/// g.backward(loss);
/// assert_eq!(g.grad(x), &[2.0, 2.0, 2.0]);
/// ```
#[derive(Debug, Default)]
pub struct Graph {
    nodes: Vec<Op>,
    lens: Vec<usize>,
    /// Start of node `i`'s buffer in both arenas.
    offsets: Vec<usize>,
    /// Value arena: all node values, concatenated in node order.
    vals: Vec<f32>,
    /// Gradient arena, same layout as `vals`.
    grads: Vec<f32>,
    params: Vec<VarId>,
    plan: Option<BackwardPlan>,
}

/// The cached loss-reachability analysis: which nodes can influence the
/// loss (via differentiable edges), and the merged gradient-arena runs
/// that must be zeroed before a backward sweep.
#[derive(Debug)]
struct BackwardPlan {
    loss: VarId,
    num_nodes: usize,
    reachable: Vec<bool>,
    /// Merged `(offset, len)` runs covering exactly the reachable
    /// gradient buffers.
    zero_runs: Vec<(usize, usize)>,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Graph::default()
    }

    fn push(&mut self, op: Op, len: usize) -> VarId {
        let id = VarId(self.nodes.len() as u32);
        let offset = self.vals.len();
        self.nodes.push(op);
        self.lens.push(len);
        self.offsets.push(offset);
        self.vals.resize(offset + len, 0.0);
        self.grads.resize(offset + len, 0.0);
        self.plan = None; // the tape grew: any cached reachability is stale
        id
    }

    fn range_of(&self, v: VarId) -> std::ops::Range<usize> {
        let i = v.index();
        self.offsets[i]..self.offsets[i] + self.lens[i]
    }

    /// Adds a **trainable** leaf initialized with `data`. Trainable leaves
    /// are what [`crate::Adam`] updates.
    pub fn param(&mut self, data: Vec<f32>) -> VarId {
        let id = self.push(Op::Leaf { trainable: true }, data.len());
        let r = self.range_of(id);
        self.vals[r].copy_from_slice(&data);
        self.params.push(id);
        id
    }

    /// Adds a non-trainable leaf (noise buffers, the temperature scalar).
    pub fn input(&mut self, data: Vec<f32>) -> VarId {
        let id = self.push(Op::Leaf { trainable: false }, data.len());
        let r = self.range_of(id);
        self.vals[r].copy_from_slice(&data);
        id
    }

    /// Elementwise sum. # Errors — [`AutodiffError::ShapeMismatch`] if
    /// lengths differ.
    pub fn add(&mut self, a: VarId, b: VarId) -> VarId {
        self.check_same_len(a, b);
        let len = self.lens[a.index()];
        self.push(Op::Add { a, b }, len)
    }

    /// Elementwise product.
    ///
    /// # Panics
    ///
    /// Panics if the operand lengths differ.
    pub fn mul(&mut self, a: VarId, b: VarId) -> VarId {
        self.check_same_len(a, b);
        let len = self.lens[a.index()];
        self.push(Op::Mul { a, b }, len)
    }

    /// Multiplies by a compile-time constant scalar.
    pub fn scale(&mut self, x: VarId, k: f32) -> VarId {
        let len = self.lens[x.index()];
        self.push(Op::Scale { x, k }, len)
    }

    /// Adds a constant vector (e.g. `−capacity` to turn demand into
    /// overflow input).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn add_const(&mut self, x: VarId, c: Arc<Vec<f32>>) -> VarId {
        assert_eq!(self.lens[x.index()], c.len(), "add_const length mismatch");
        let len = c.len();
        self.push(Op::AddConst { x, c }, len)
    }

    /// Multiplies elementwise by a constant vector (e.g. per-edge β
    /// weights).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn mul_const(&mut self, x: VarId, c: Arc<Vec<f32>>) -> VarId {
        assert_eq!(self.lens[x.index()], c.len(), "mul_const length mismatch");
        let len = c.len();
        self.push(Op::MulConst { x, c }, len)
    }

    /// Divides by a length-1 variable (the annealing temperature). No
    /// gradient flows into the scalar.
    ///
    /// # Panics
    ///
    /// Panics if `s` is not length 1.
    pub fn div_by_scalar(&mut self, x: VarId, s: VarId) -> VarId {
        assert_eq!(self.lens[s.index()], 1, "temperature must be a scalar");
        let len = self.lens[x.index()];
        self.push(Op::DivByScalarVar { x, s }, len)
    }

    /// Softmax normalized within each CSR segment.
    ///
    /// # Panics
    ///
    /// Panics if the segment table does not cover exactly `x`'s length.
    pub fn segmented_softmax(&mut self, x: VarId, seg: Arc<Segments>) -> VarId {
        assert_eq!(
            self.lens[x.index()],
            seg.len(),
            "segment table does not cover input"
        );
        let len = seg.len();
        self.push(Op::SegSoftmax { x, seg }, len)
    }

    /// `out[i] = x[idx[i]]`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range for `x`.
    pub fn gather(&mut self, x: VarId, idx: Arc<Vec<u32>>) -> VarId {
        let xlen = self.lens[x.index()];
        assert!(
            idx.iter().all(|&i| (i as usize) < xlen),
            "gather index out of range"
        );
        let len = idx.len();
        self.push(Op::Gather { x, idx }, len)
    }

    /// `out[j] = Σ x[i]` over entries with `idx[i] == j`; output length
    /// `len`.
    ///
    /// # Panics
    ///
    /// Panics if `idx.len() != x.len()` or any index `≥ len`.
    pub fn scatter_add(&mut self, x: VarId, idx: Arc<Vec<u32>>, len: usize) -> VarId {
        assert_eq!(self.lens[x.index()], idx.len(), "scatter length mismatch");
        assert!(
            idx.iter().all(|&i| (i as usize) < len),
            "scatter index out of range"
        );
        self.push(Op::ScatterAdd { x, idx }, len)
    }

    /// Applies an elementwise [`Activation`].
    pub fn activate(&mut self, x: VarId, kind: Activation) -> VarId {
        let len = self.lens[x.index()];
        self.push(Op::Activate { x, kind }, len)
    }

    /// Scalar sum of all elements.
    pub fn sum_all(&mut self, x: VarId) -> VarId {
        self.push(Op::SumAll { x }, 1)
    }

    /// Scalar dot product with a constant weight vector.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn dot_const(&mut self, x: VarId, w: Arc<Vec<f32>>) -> VarId {
        assert_eq!(self.lens[x.index()], w.len(), "dot_const length mismatch");
        self.push(Op::DotConst { x, w }, 1)
    }

    /// Scalar linear combination `Σ k_j · x_j` of scalar variables — the
    /// final `a1·WL + a2·via + a3·overflow` node.
    ///
    /// # Panics
    ///
    /// Panics if any term is not a scalar.
    pub fn combine(&mut self, terms: Vec<(VarId, f32)>) -> VarId {
        for (v, _) in &terms {
            assert_eq!(self.lens[v.index()], 1, "combine needs scalar terms");
        }
        self.push(Op::Combine { terms }, 1)
    }

    fn check_same_len(&self, a: VarId, b: VarId) {
        assert_eq!(
            self.lens[a.index()],
            self.lens[b.index()],
            "operand length mismatch"
        );
    }

    /// Current value buffer of `v` (valid after [`Graph::forward`]).
    pub fn value(&self, v: VarId) -> &[f32] {
        &self.vals[self.range_of(v)]
    }

    /// Current gradient buffer of `v` (valid after [`Graph::backward`];
    /// buffers that cannot influence the most recent loss read as zero).
    pub fn grad(&self, v: VarId) -> &[f32] {
        &self.grads[self.range_of(v)]
    }

    /// Mutable access to a **leaf** buffer (noise, temperature,
    /// warm-started logits).
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a leaf — interior node values are derived.
    pub fn data_mut(&mut self, v: VarId) -> &mut [f32] {
        assert!(
            matches!(self.nodes[v.index()], Op::Leaf { .. }),
            "data_mut on non-leaf"
        );
        let r = self.range_of(v);
        &mut self.vals[r]
    }

    /// Simultaneous mutable value / shared gradient access for one
    /// variable — the optimizer's update view (no gradient clone).
    pub(crate) fn val_grad_mut(&mut self, v: VarId) -> (&mut [f32], &[f32]) {
        let r = self.range_of(v);
        (&mut self.vals[r.clone()], &self.grads[r])
    }

    /// Replaces a leaf's contents.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a leaf or `data` has the wrong length.
    pub fn set_data(&mut self, v: VarId, data: &[f32]) {
        let dst = self.data_mut(v);
        assert_eq!(dst.len(), data.len(), "set_data length mismatch");
        dst.copy_from_slice(data);
    }

    /// The trainable leaves, in creation order.
    pub fn params(&self) -> &[VarId] {
        &self.params
    }

    /// Whether `v` is a trainable leaf (i.e. receives optimizer updates).
    pub fn is_trainable(&self, v: VarId) -> bool {
        matches!(self.nodes[v.index()], Op::Leaf { trainable: true })
    }

    /// Length of variable `v`.
    pub fn len_of(&self, v: VarId) -> usize {
        self.lens[v.index()]
    }

    /// Number of tape nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Total bytes held in value + gradient buffers — the "device memory"
    /// figure reported in the scalability study (Fig. 5b analogue).
    pub fn bytes(&self) -> usize {
        self.lens.iter().sum::<usize>() * 8
    }

    /// Recomputes every node value in topological order.
    pub fn forward(&mut self) {
        for i in 0..self.nodes.len() {
            if matches!(self.nodes[i], Op::Leaf { .. }) {
                continue;
            }
            // Inputs strictly precede node i, so splitting the value arena
            // at the node's offset makes every input readable while the
            // node's own buffer is written.
            let (head, tail) = self.vals.split_at_mut(self.offsets[i]);
            let out = &mut tail[..self.lens[i]];
            let (offsets, lens) = (&self.offsets, &self.lens);
            let get = |v: VarId| -> &[f32] {
                let j = v.index();
                &head[offsets[j]..offsets[j] + lens[j]]
            };
            self.nodes[i].forward(&get, out);
        }
    }

    /// Computes (and caches) the loss-reachability plan: the set of nodes
    /// with a differentiable path to `loss`, plus the merged gradient
    /// ranges a backward sweep must zero. Called automatically by
    /// [`Graph::backward`]; model builders call it eagerly so the
    /// analysis cost sits at build time, not in the first iteration.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not a scalar.
    pub fn prepare_backward(&mut self, loss: VarId) {
        assert_eq!(self.lens[loss.index()], 1, "loss must be scalar");
        if let Some(p) = &self.plan {
            if p.loss == loss && p.num_nodes == self.nodes.len() {
                return;
            }
        }
        // The plan changed (new loss or new nodes): clear the whole arena
        // once so gradients accumulated under a previous plan cannot leak
        // through buffers the new plan never touches.
        self.grads.fill(0.0);
        let n = self.nodes.len();
        let mut reachable = vec![false; n];
        reachable[loss.index()] = true;
        // Reverse sweep: nodes after the loss cannot influence it (the
        // tape is topologically ordered), so start at the loss itself.
        for i in (0..=loss.index()).rev() {
            if reachable[i] {
                self.nodes[i].for_each_grad_input(|v| reachable[v.index()] = true);
            }
        }
        let mut zero_runs: Vec<(usize, usize)> = Vec::new();
        for (i, &live) in reachable.iter().enumerate() {
            if !live || self.lens[i] == 0 {
                continue;
            }
            let (off, len) = (self.offsets[i], self.lens[i]);
            match zero_runs.last_mut() {
                Some((ro, rl)) if *ro + *rl == off => *rl += len,
                _ => zero_runs.push((off, len)),
            }
        }
        self.plan = Some(BackwardPlan {
            loss,
            num_nodes: n,
            reachable,
            zero_runs,
        });
    }

    /// Accumulates `∂loss/∂v` into every gradient buffer.
    ///
    /// Only nodes on a differentiable path to `loss` (per the cached
    /// [`Graph::prepare_backward`] plan) are visited or re-zeroed; all
    /// other gradient buffers stay zero. Elementwise accumulations above
    /// [`crate::parallel::PAR_THRESHOLD`] run on the worker pool.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not a scalar.
    pub fn backward(&mut self, loss: VarId) {
        if parallel::exec_mode() == parallel::ExecMode::Spawn {
            // Benchmark baseline: reproduce the pre-pool executor exactly
            // (see backward_spawn_baseline).
            return self.backward_spawn_baseline(loss);
        }
        self.prepare_backward(loss);
        let plan = self.plan.take().expect("plan just prepared");
        for &(off, len) in &plan.zero_runs {
            self.grads[off..off + len].fill(0.0);
        }
        self.grads[self.offsets[loss.index()]] = 1.0;
        for i in (0..=loss.index()).rev() {
            if !plan.reachable[i] {
                continue;
            }
            // Split so that input gradients (offsets < offsets[i]) are
            // mutable while the output gradient is readable.
            let (gin, gtail) = self.grads.split_at_mut(self.offsets[i]);
            let gout: &[f32] = &gtail[..self.lens[i]];
            // Statically reachable but numerically dead (e.g. an overflow
            // activation that never saturated): every kernel accumulates
            // `+= gout·…`, so an all-zero output gradient contributes
            // nothing. The scan short-circuits on the first live element,
            // so live nodes pay one read.
            if gout.iter().all(|&g| g == 0.0) {
                continue;
            }
            let (offsets, lens) = (&self.offsets, &self.lens);
            let vals = &self.vals;
            let val = |v: VarId| -> &[f32] {
                let j = v.index();
                &vals[offsets[j]..offsets[j] + lens[j]]
            };
            match &self.nodes[i] {
                Op::Leaf { .. } => {}
                Op::Add { a, b } => {
                    par_axpy(slice_mut(gin, offsets, lens, *a), gout, 1.0);
                    par_axpy(slice_mut(gin, offsets, lens, *b), gout, 1.0);
                }
                Op::Mul { a, b } => {
                    let (xa, xb) = (val(*a), val(*b));
                    if a == b {
                        let ga = slice_mut(gin, offsets, lens, *a);
                        par_map_mut(ga, |i, g| *g += 2.0 * gout[i] * xa[i]);
                    } else {
                        let ga = slice_mut(gin, offsets, lens, *a);
                        par_map_mut(ga, |i, g| *g += gout[i] * xb[i]);
                        let gb = slice_mut(gin, offsets, lens, *b);
                        par_map_mut(gb, |i, g| *g += gout[i] * xa[i]);
                    }
                }
                Op::Scale { x, k } => par_axpy(slice_mut(gin, offsets, lens, *x), gout, *k),
                Op::AddConst { x, .. } => par_axpy(slice_mut(gin, offsets, lens, *x), gout, 1.0),
                Op::MulConst { x, c } => {
                    let gx = slice_mut(gin, offsets, lens, *x);
                    let c = &**c;
                    par_map_mut(gx, |i, g| *g += gout[i] * c[i]);
                }
                Op::DivByScalarVar { x, s } => {
                    let inv = 1.0 / val(*s)[0];
                    par_axpy(slice_mut(gin, offsets, lens, *x), gout, inv);
                }
                Op::SegSoftmax { x, seg } => {
                    // p is this node's own (already computed) output.
                    let p = &vals[self.offsets[i]..self.offsets[i] + self.lens[i]];
                    let gx = slice_mut(gin, offsets, lens, *x);
                    let gxp = SendPtr(gx.as_mut_ptr());
                    let seg = &**seg;
                    // Segments are disjoint: parallelizing over them is
                    // bit-stable across any thread count.
                    parallel::par_blocks(seg.num_segments(), seg.len(), move |block| {
                        for s in block {
                            let r = seg.segment(s);
                            let dot: f32 = gout[r.clone()]
                                .iter()
                                .zip(&p[r.clone()])
                                .map(|(g, p)| g * p)
                                .sum();
                            for j in r {
                                // SAFETY: segment ranges partition gx.
                                unsafe { *gxp.get().add(j) += p[j] * (gout[j] - dot) };
                            }
                        }
                    });
                }
                Op::Gather { x, idx } => {
                    par_scatter_add(slice_mut(gin, offsets, lens, *x), idx, gout);
                }
                Op::ScatterAdd { x, idx, .. } => {
                    let gx = slice_mut(gin, offsets, lens, *x);
                    let idx = &**idx;
                    par_map_mut(gx, |j, g| *g += gout[idx[j] as usize]);
                }
                Op::Activate { x, kind } => {
                    let xv = val(*x);
                    let kind = *kind;
                    let gx = slice_mut(gin, offsets, lens, *x);
                    par_map_mut(gx, |i, g| *g += gout[i] * kind.grad(xv[i]));
                }
                Op::SumAll { x } => {
                    let g = gout[0];
                    par_map_mut(slice_mut(gin, offsets, lens, *x), |_, v| *v += g);
                }
                Op::DotConst { x, w } => {
                    let g = gout[0];
                    let w = &**w;
                    par_map_mut(slice_mut(gin, offsets, lens, *x), |i, v| *v += g * w[i]);
                }
                Op::Combine { terms } => {
                    let g = gout[0];
                    for (v, k) in terms {
                        gin[offsets[v.index()]] += g * k;
                    }
                }
            }
        }
        self.plan = Some(plan);
    }

    /// The pre-pool backward pass, kept (modulo the arena layout) as the
    /// [`parallel::ExecMode::Spawn`] benchmark baseline: a full gradient
    /// zero-fill every iteration, an O(len) all-zero scan per node in
    /// place of the reachability plan, and sequential kernels — the only
    /// parallel backward kernel the old executor had was the gather
    /// scatter-add, which [`par_scatter_add`] reproduces in Spawn mode.
    fn backward_spawn_baseline(&mut self, loss: VarId) {
        assert_eq!(self.lens[loss.index()], 1, "loss must be scalar");
        self.grads.fill(0.0);
        self.grads[self.offsets[loss.index()]] = 1.0;
        for i in (0..=loss.index()).rev() {
            let (gin, gtail) = self.grads.split_at_mut(self.offsets[i]);
            let gout: &[f32] = &gtail[..self.lens[i]];
            if gout.iter().all(|&g| g == 0.0) {
                continue;
            }
            let (offsets, lens) = (&self.offsets, &self.lens);
            let vals = &self.vals;
            let val = |v: VarId| -> &[f32] {
                let j = v.index();
                &vals[offsets[j]..offsets[j] + lens[j]]
            };
            match &self.nodes[i] {
                Op::Leaf { .. } => {}
                Op::Add { a, b } => {
                    seq_axpy(slice_mut(gin, offsets, lens, *a), gout, 1.0);
                    seq_axpy(slice_mut(gin, offsets, lens, *b), gout, 1.0);
                }
                Op::Mul { a, b } => {
                    let (xa, xb) = (val(*a), val(*b));
                    if a == b {
                        let ga = slice_mut(gin, offsets, lens, *a);
                        for i in 0..ga.len() {
                            ga[i] += 2.0 * gout[i] * xa[i];
                        }
                    } else {
                        let ga = slice_mut(gin, offsets, lens, *a);
                        for i in 0..ga.len() {
                            ga[i] += gout[i] * xb[i];
                        }
                        let gb = slice_mut(gin, offsets, lens, *b);
                        for i in 0..gb.len() {
                            gb[i] += gout[i] * xa[i];
                        }
                    }
                }
                Op::Scale { x, k } => seq_axpy(slice_mut(gin, offsets, lens, *x), gout, *k),
                Op::AddConst { x, .. } => seq_axpy(slice_mut(gin, offsets, lens, *x), gout, 1.0),
                Op::MulConst { x, c } => {
                    let gx = slice_mut(gin, offsets, lens, *x);
                    for i in 0..gx.len() {
                        gx[i] += gout[i] * c[i];
                    }
                }
                Op::DivByScalarVar { x, s } => {
                    let inv = 1.0 / val(*s)[0];
                    seq_axpy(slice_mut(gin, offsets, lens, *x), gout, inv);
                }
                Op::SegSoftmax { x, seg } => {
                    let p = &vals[self.offsets[i]..self.offsets[i] + self.lens[i]];
                    let gx = slice_mut(gin, offsets, lens, *x);
                    for s in 0..seg.num_segments() {
                        let r = seg.segment(s);
                        let dot: f32 = gout[r.clone()]
                            .iter()
                            .zip(&p[r.clone()])
                            .map(|(g, p)| g * p)
                            .sum();
                        for j in r {
                            gx[j] += p[j] * (gout[j] - dot);
                        }
                    }
                }
                Op::Gather { x, idx } => {
                    par_scatter_add(slice_mut(gin, offsets, lens, *x), idx, gout);
                }
                Op::ScatterAdd { x, idx, .. } => {
                    let gx = slice_mut(gin, offsets, lens, *x);
                    for j in 0..gx.len() {
                        gx[j] += gout[idx[j] as usize];
                    }
                }
                Op::Activate { x, kind } => {
                    let xv = val(*x);
                    let kind = *kind;
                    let gx = slice_mut(gin, offsets, lens, *x);
                    for i in 0..gx.len() {
                        gx[i] += gout[i] * kind.grad(xv[i]);
                    }
                }
                Op::SumAll { x } => {
                    let g = gout[0];
                    for v in slice_mut(gin, offsets, lens, *x) {
                        *v += g;
                    }
                }
                Op::DotConst { x, w } => {
                    let g = gout[0];
                    let gx = slice_mut(gin, offsets, lens, *x);
                    for (v, wi) in gx.iter_mut().zip(w.iter()) {
                        *v += g * wi;
                    }
                }
                Op::Combine { terms } => {
                    let g = gout[0];
                    for (v, k) in terms {
                        gin[offsets[v.index()]] += g * k;
                    }
                }
            }
        }
    }
}

/// Sequential `dst += k·src` — the legacy baseline's axpy.
fn seq_axpy(dst: &mut [f32], src: &[f32], k: f32) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d += k * s;
    }
}

/// Mutable view of `v`'s gradient inside the lower half of a split arena.
fn slice_mut<'a>(gin: &'a mut [f32], offsets: &[usize], lens: &[usize], v: VarId) -> &'a mut [f32] {
    let j = v.index();
    &mut gin[offsets[j]..offsets[j] + lens[j]]
}

/// Validates index tables against a target length — the fallible precursor
/// to [`Graph::gather`] / [`Graph::scatter_add`] for untrusted input.
///
/// # Errors
///
/// Returns [`AutodiffError::IndexOutOfRange`] on the first bad index.
pub fn check_indices(idx: &[u32], len: usize) -> Result<(), AutodiffError> {
    for &i in idx {
        if i as usize >= len {
            return Err(AutodiffError::IndexOutOfRange { index: i, len });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finite_diff_loss<F>(g: &mut Graph, w: VarId, loss: VarId, build_eval: F) -> Vec<f32>
    where
        F: Fn(&mut Graph) -> f32,
    {
        let h = 1e-3;
        let n = g.len_of(w);
        let mut grads = Vec::with_capacity(n);
        for i in 0..n {
            let orig = g.value(w)[i];
            g.data_mut(w)[i] = orig + h;
            let up = build_eval(g);
            g.data_mut(w)[i] = orig - h;
            let dn = build_eval(g);
            g.data_mut(w)[i] = orig;
            grads.push((up - dn) / (2.0 * h));
        }
        let _ = loss;
        grads
    }

    #[test]
    fn add_mul_scale_forward() {
        let mut g = Graph::new();
        let a = g.param(vec![1.0, 2.0]);
        let b = g.input(vec![3.0, 4.0]);
        let s = g.add(a, b);
        let m = g.mul(s, s);
        let y = g.scale(m, 0.5);
        g.forward();
        assert_eq!(g.value(y), &[8.0, 18.0]);
    }

    #[test]
    fn gradient_of_quadratic() {
        // loss = Σ (w + c)² → dw = 2(w + c)
        let mut g = Graph::new();
        let w = g.param(vec![1.0, -2.0, 0.5]);
        let c = Arc::new(vec![0.5, 1.0, -1.0]);
        let shifted = g.add_const(w, c.clone());
        let sq = g.mul(shifted, shifted);
        let loss = g.sum_all(sq);
        g.forward();
        g.backward(loss);
        for i in 0..3 {
            let want = 2.0 * (g.value(w)[i] + c[i]);
            assert!((g.grad(w)[i] - want).abs() < 1e-5);
        }
    }

    #[test]
    fn gather_scatter_roundtrip_gradients() {
        // demand[e] = Σ paths through e; loss = Σ demand² — classic DGR shape
        let mut g = Graph::new();
        let w = g.param(vec![0.3, 0.7, 0.1, 0.9]);
        let idx = Arc::new(vec![0u32, 1, 1, 2]);
        let d = g.scatter_add(w, idx.clone(), 3);
        let sq = g.mul(d, d);
        let loss = g.sum_all(sq);
        g.forward();
        g.backward(loss);
        // d = [0.3, 0.8, 0.9]; dw_i = 2·d[idx[i]]
        let d_vals = [0.3f32, 0.8, 0.9];
        for i in 0..4 {
            let want = 2.0 * d_vals[idx[i] as usize];
            assert!((g.grad(w)[i] - want).abs() < 1e-5);
        }
    }

    #[test]
    fn gather_forward_and_grad() {
        let mut g = Graph::new();
        let w = g.param(vec![1.0, 2.0]);
        let idx = Arc::new(vec![0u32, 0, 1]);
        let y = g.gather(w, idx);
        let loss = g.sum_all(y);
        g.forward();
        assert_eq!(g.value(y), &[1.0, 1.0, 2.0]);
        g.backward(loss);
        assert_eq!(g.grad(w), &[2.0, 1.0]); // index 0 gathered twice
    }

    #[test]
    fn segmented_softmax_normalizes_per_group() {
        let mut g = Graph::new();
        let w = g.param(vec![1.0, 2.0, 0.0, 0.0, 5.0]);
        let seg = Arc::new(Segments::from_offsets(vec![0, 2, 5]).unwrap());
        let p = g.segmented_softmax(w, seg);
        g.forward();
        let v = g.value(p);
        assert!((v[0] + v[1] - 1.0).abs() < 1e-6);
        assert!((v[2] + v[3] + v[4] - 1.0).abs() < 1e-6);
        assert!(v[4] > 0.9); // logit 5 dominates its group
    }

    #[test]
    fn softmax_gradient_matches_finite_difference() {
        let build = || {
            let mut g = Graph::new();
            let w = g.param(vec![0.2, -0.4, 0.9, 0.1]);
            let seg = Arc::new(Segments::from_offsets(vec![0, 2, 4]).unwrap());
            let p = g.segmented_softmax(w, seg);
            let cost = Arc::new(vec![1.0, 3.0, -2.0, 0.5]);
            let loss = g.dot_const(p, cost);
            (g, w, loss)
        };
        let (mut g, w, loss) = build();
        g.forward();
        g.backward(loss);
        let analytic: Vec<f32> = g.grad(w).to_vec();
        let numeric = finite_diff_loss(&mut g, w, loss, |g| {
            g.forward();
            g.value(loss)[0]
        });
        for (a, n) in analytic.iter().zip(&numeric) {
            assert!((a - n).abs() < 1e-3, "analytic {a} vs numeric {n}");
        }
    }

    #[test]
    fn activation_gradients_flow() {
        for kind in Activation::ALL {
            let mut g = Graph::new();
            let w = g.param(vec![-1.5, -0.2, 0.4, 2.0]);
            let y = g.activate(w, kind);
            let loss = g.sum_all(y);
            g.forward();
            g.backward(loss);
            let analytic = g.grad(w).to_vec();
            let numeric = finite_diff_loss(&mut g, w, loss, |g| {
                g.forward();
                g.value(loss)[0]
            });
            for (i, (a, n)) in analytic.iter().zip(&numeric).enumerate() {
                assert!(
                    (a - n).abs() < 2e-2,
                    "{kind}: grad[{i}] analytic {a} vs numeric {n}"
                );
            }
        }
    }

    #[test]
    fn div_by_scalar_temperature() {
        let mut g = Graph::new();
        let w = g.param(vec![2.0, 4.0]);
        let t = g.input(vec![2.0]);
        let y = g.div_by_scalar(w, t);
        let loss = g.sum_all(y);
        g.forward();
        assert_eq!(g.value(y), &[1.0, 2.0]);
        g.backward(loss);
        assert_eq!(g.grad(w), &[0.5, 0.5]);
        // temperature receives no gradient
        assert_eq!(g.grad(t), &[0.0]);
        // updating the leaf changes the next forward
        g.set_data(t, &[4.0]);
        g.forward();
        assert_eq!(g.value(y), &[0.5, 1.0]);
    }

    #[test]
    fn combine_weights_scalars() {
        let mut g = Graph::new();
        let a = g.param(vec![1.0]);
        let b = g.param(vec![2.0]);
        let sa = g.sum_all(a);
        let sb = g.sum_all(b);
        let loss = g.combine(vec![(sa, 0.5), (sb, 4.0)]);
        g.forward();
        assert_eq!(g.value(loss)[0], 0.5 + 8.0);
        g.backward(loss);
        assert_eq!(g.grad(a), &[0.5]);
        assert_eq!(g.grad(b), &[4.0]);
    }

    #[test]
    #[should_panic(expected = "data_mut on non-leaf")]
    fn data_mut_rejects_interior_nodes() {
        let mut g = Graph::new();
        let a = g.param(vec![1.0]);
        let y = g.scale(a, 2.0);
        let _ = g.data_mut(y);
    }

    #[test]
    fn check_indices_reports_offender() {
        assert!(check_indices(&[0, 1, 2], 3).is_ok());
        assert_eq!(
            check_indices(&[0, 5], 3),
            Err(AutodiffError::IndexOutOfRange { index: 5, len: 3 })
        );
    }

    #[test]
    fn bytes_accounts_values_and_grads() {
        let mut g = Graph::new();
        let a = g.param(vec![0.0; 100]);
        let _ = g.scale(a, 1.0);
        assert_eq!(g.bytes(), 200 * 8);
    }

    #[test]
    fn dead_branches_are_skipped_but_stay_zero() {
        let mut g = Graph::new();
        let w = g.param(vec![1.0, 2.0]);
        let dead_in = g.param(vec![3.0, 5.0]);
        let dead = g.mul(dead_in, dead_in); // never feeds the loss
        let y = g.mul(w, w);
        let loss = g.sum_all(y);
        g.forward();
        g.backward(loss);
        assert_eq!(g.grad(w), &[2.0, 4.0]);
        assert_eq!(g.grad(dead), &[0.0, 0.0]);
        assert_eq!(g.grad(dead_in), &[0.0, 0.0]);
    }

    #[test]
    fn switching_losses_rebuilds_the_plan_and_clears_stale_grads() {
        let mut g = Graph::new();
        let a = g.param(vec![1.0]);
        let b = g.param(vec![2.0]);
        let la = g.sum_all(a);
        let lb = g.sum_all(b);
        g.forward();
        g.backward(la);
        assert_eq!(g.grad(a), &[1.0]);
        assert_eq!(g.grad(b), &[0.0]);
        g.backward(lb);
        // a is unreachable from lb: its old gradient must not linger
        assert_eq!(g.grad(a), &[0.0]);
        assert_eq!(g.grad(b), &[1.0]);
    }

    #[test]
    fn temperature_scalar_does_not_keep_its_producers_alive() {
        // reachability must not cross the non-differentiable temperature
        // edge of DivByScalarVar
        let mut g = Graph::new();
        let w = g.param(vec![1.0, 2.0]);
        let t_src = g.param(vec![3.0]);
        let t = g.scale(t_src, 1.0);
        let y = g.div_by_scalar(w, t);
        let loss = g.sum_all(y);
        g.forward();
        g.backward(loss);
        assert_eq!(g.grad(t_src), &[0.0]);
        assert_eq!(g.grad(t), &[0.0]);
        assert!((g.grad(w)[0] - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn backward_is_repeatable_on_the_arena() {
        // gradients must not accumulate across backward() calls
        let mut g = Graph::new();
        let w = g.param(vec![1.0, -1.0]);
        let sq = g.mul(w, w);
        let loss = g.sum_all(sq);
        g.forward();
        g.backward(loss);
        let first = g.grad(w).to_vec();
        g.backward(loss);
        assert_eq!(g.grad(w), &first[..]);
    }
}
