//! The op tape: build once, re-execute every training iteration.

use std::sync::Arc;

use crate::activation::Activation;
use crate::kernels;
use crate::ops::Op;
use crate::parallel::{self, par_axpy, par_scatter_add, SendPtr};
use crate::segments::Segments;
use crate::AutodiffError;

/// Arena-size threshold (bytes) above which a batched graph executes
/// one lane at a time instead of one fused op-major sweep across all
/// lanes. A batched arena is `batch`× the single-instance footprint;
/// once it outgrows this L2-ish budget, adjacent ops' producer→consumer
/// buffer reuse starts missing cache and the op-major sweep scales
/// super-linearly in `batch`. Lane-blocked sweeps restore the
/// single-instance working set per lane; both orders are bit-identical
/// per lane.
const LANE_BLOCK_BYTES: usize = 4 << 20;

/// Handle to a tape variable (a dense `f32` buffer plus its gradient).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub(crate) u32);

impl VarId {
    /// Dense index into the tape.
    pub(crate) fn index(self) -> usize {
        self.0 as usize
    }
}

/// A statically-shaped computation graph over dense `f32` buffers.
///
/// Nodes are appended in topological order by construction — every op's
/// inputs must already exist. [`Graph::forward`] recomputes all values in
/// one sweep, [`Graph::backward`] accumulates gradients in a reverse
/// sweep. The graph is built **once** per routing problem and re-executed
/// every iteration (leaf buffers like Gumbel noise and the temperature are
/// updated in place via [`Graph::set_data`]), mirroring how DGR reuses its
/// PyTorch graph across iterations.
///
/// # Memory layout
///
/// All node values live in one contiguous `f32` arena, all gradients in a
/// second one, with a shared offset table (node `i` owns
/// `offsets[i]..offsets[i] + lens[i]·batch` of both). The forward sweep
/// walks the value arena strictly left-to-right and the backward sweep
/// right-to-left, so consecutive ops touch adjacent cache lines instead
/// of chasing per-node heap allocations.
///
/// # Batch axis
///
/// A graph built with [`Graph::with_batch`] evaluates `B` independent
/// problem instances per sweep: every node's physical buffer holds `B`
/// consecutive logical slices (instance-major), `lens` stores the
/// *logical* per-instance length, and scalars (the loss, temperatures)
/// become length-`B` vectors. [`Graph::backward`] seeds ∂loss/∂loss = 1
/// for every instance, so one sweep produces all `B` gradients and one
/// [`crate::Adam`] step updates all instances. Per-instance reductions
/// reuse the exact single-instance kernels, so instance `b` of a batched
/// run is bit-identical to a standalone run with the same leaf data.
///
/// # Examples
///
/// ```
/// use dgr_autodiff::Graph;
/// use std::sync::Arc;
///
/// let mut g = Graph::new();
/// let x = g.param(vec![1.0, 2.0, 3.0]);
/// let y = g.scale(x, 2.0);
/// let loss = g.sum_all(y);
/// g.forward();
/// assert_eq!(g.value(loss)[0], 12.0);
/// g.backward(loss);
/// assert_eq!(g.grad(x), &[2.0, 2.0, 2.0]);
/// ```
#[derive(Debug)]
pub struct Graph {
    nodes: Vec<Op>,
    /// Logical (per-instance) length of node `i`.
    lens: Vec<usize>,
    /// Start of node `i`'s buffer in both arenas (physical offset).
    offsets: Vec<usize>,
    /// Value arena: all node values, concatenated in node order.
    vals: Vec<f32>,
    /// Gradient arena, same layout as `vals`.
    grads: Vec<f32>,
    params: Vec<VarId>,
    plan: Option<BackwardPlan>,
    /// Number of batch instances every buffer carries (≥ 1).
    batch: usize,
}

impl Default for Graph {
    fn default() -> Self {
        Graph::with_batch(1)
    }
}

/// The cached loss-reachability analysis: which nodes can influence the
/// loss (via differentiable edges), and the merged gradient-arena runs
/// that must be zeroed before a backward sweep.
#[derive(Debug)]
struct BackwardPlan {
    loss: VarId,
    num_nodes: usize,
    reachable: Vec<bool>,
    /// Merged `(offset, len)` runs covering exactly the reachable
    /// gradient buffers.
    zero_runs: Vec<(usize, usize)>,
}

impl Graph {
    /// Creates an empty single-instance graph.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Creates an empty graph whose buffers carry `batch` independent
    /// instances (instance-major layout).
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    pub fn with_batch(batch: usize) -> Self {
        assert!(batch >= 1, "batch must be at least 1");
        Graph {
            nodes: Vec::new(),
            lens: Vec::new(),
            offsets: Vec::new(),
            vals: Vec::new(),
            grads: Vec::new(),
            params: Vec::new(),
            plan: None,
            batch,
        }
    }

    /// Number of batch instances every buffer carries.
    pub fn batch(&self) -> usize {
        self.batch
    }

    fn push(&mut self, op: Op, len: usize) -> VarId {
        let id = VarId(self.nodes.len() as u32);
        let offset = self.vals.len();
        let phys = len * self.batch;
        self.nodes.push(op);
        self.lens.push(len);
        self.offsets.push(offset);
        self.vals.resize(offset + phys, 0.0);
        self.grads.resize(offset + phys, 0.0);
        self.plan = None; // the tape grew: any cached reachability is stale
        id
    }

    /// Physical range of `v` in both arenas (all `batch` instances).
    fn range_of(&self, v: VarId) -> std::ops::Range<usize> {
        let i = v.index();
        self.offsets[i]..self.offsets[i] + self.lens[i] * self.batch
    }

    /// Adds a **trainable** leaf whose per-instance data is `data`,
    /// replicated across all batch instances. Trainable leaves are what
    /// [`crate::Adam`] updates.
    pub fn param(&mut self, data: Vec<f32>) -> VarId {
        let n = data.len();
        let id = self.push(Op::Leaf { trainable: true }, n);
        let r = self.range_of(id);
        if n > 0 {
            for chunk in self.vals[r].chunks_exact_mut(n) {
                chunk.copy_from_slice(&data);
            }
        }
        self.params.push(id);
        id
    }

    /// Adds a trainable leaf from pre-stacked per-instance data:
    /// `data.len()` must equal `per_len · batch` (instance-major).
    ///
    /// # Panics
    ///
    /// Panics on a length mismatch.
    pub fn param_stacked(&mut self, per_len: usize, data: Vec<f32>) -> VarId {
        assert_eq!(
            data.len(),
            per_len * self.batch,
            "param_stacked length mismatch"
        );
        let id = self.push(Op::Leaf { trainable: true }, per_len);
        let r = self.range_of(id);
        self.vals[r].copy_from_slice(&data);
        self.params.push(id);
        id
    }

    /// Adds a non-trainable leaf (noise buffers, the temperature scalar);
    /// `data` is per-instance and replicated across the batch.
    pub fn input(&mut self, data: Vec<f32>) -> VarId {
        let n = data.len();
        let id = self.push(Op::Leaf { trainable: false }, n);
        let r = self.range_of(id);
        if n > 0 {
            for chunk in self.vals[r].chunks_exact_mut(n) {
                chunk.copy_from_slice(&data);
            }
        }
        id
    }

    /// Adds a non-trainable leaf from pre-stacked per-instance data
    /// (`per_len · batch` elements, instance-major).
    ///
    /// # Panics
    ///
    /// Panics on a length mismatch.
    pub fn input_stacked(&mut self, per_len: usize, data: Vec<f32>) -> VarId {
        assert_eq!(
            data.len(),
            per_len * self.batch,
            "input_stacked length mismatch"
        );
        let id = self.push(Op::Leaf { trainable: false }, per_len);
        let r = self.range_of(id);
        self.vals[r].copy_from_slice(&data);
        id
    }

    /// Elementwise sum. # Errors — [`AutodiffError::ShapeMismatch`] if
    /// lengths differ.
    pub fn add(&mut self, a: VarId, b: VarId) -> VarId {
        self.check_same_len(a, b);
        let len = self.lens[a.index()];
        self.push(Op::Add { a, b }, len)
    }

    /// Elementwise product.
    ///
    /// # Panics
    ///
    /// Panics if the operand lengths differ.
    pub fn mul(&mut self, a: VarId, b: VarId) -> VarId {
        self.check_same_len(a, b);
        let len = self.lens[a.index()];
        self.push(Op::Mul { a, b }, len)
    }

    /// Multiplies by a compile-time constant scalar.
    pub fn scale(&mut self, x: VarId, k: f32) -> VarId {
        let len = self.lens[x.index()];
        self.push(Op::Scale { x, k }, len)
    }

    /// Adds a constant vector (e.g. `−capacity` to turn demand into
    /// overflow input).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn add_const(&mut self, x: VarId, c: Arc<Vec<f32>>) -> VarId {
        assert_eq!(self.lens[x.index()], c.len(), "add_const length mismatch");
        let len = c.len();
        self.push(Op::AddConst { x, c }, len)
    }

    /// Multiplies elementwise by a constant vector (e.g. per-edge β
    /// weights).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn mul_const(&mut self, x: VarId, c: Arc<Vec<f32>>) -> VarId {
        assert_eq!(self.lens[x.index()], c.len(), "mul_const length mismatch");
        let len = c.len();
        self.push(Op::MulConst { x, c }, len)
    }

    /// Divides by a length-1 variable (the annealing temperature). No
    /// gradient flows into the scalar.
    ///
    /// # Panics
    ///
    /// Panics if `s` is not length 1.
    pub fn div_by_scalar(&mut self, x: VarId, s: VarId) -> VarId {
        assert_eq!(self.lens[s.index()], 1, "temperature must be a scalar");
        let len = self.lens[x.index()];
        self.push(Op::DivByScalarVar { x, s }, len)
    }

    /// Softmax normalized within each CSR segment.
    ///
    /// # Panics
    ///
    /// Panics if the segment table does not cover exactly `x`'s length.
    pub fn segmented_softmax(&mut self, x: VarId, seg: Arc<Segments>) -> VarId {
        assert_eq!(
            self.lens[x.index()],
            seg.len(),
            "segment table does not cover input"
        );
        let len = seg.len();
        self.push(Op::SegSoftmax { x, seg }, len)
    }

    /// `out[i] = x[idx[i]]`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range for `x`.
    pub fn gather(&mut self, x: VarId, idx: Arc<Vec<u32>>) -> VarId {
        let xlen = self.lens[x.index()];
        assert!(
            idx.iter().all(|&i| (i as usize) < xlen),
            "gather index out of range"
        );
        let len = idx.len();
        self.push(Op::Gather { x, idx }, len)
    }

    /// `out[j] = Σ x[i]` over entries with `idx[i] == j`; output length
    /// `len`.
    ///
    /// # Panics
    ///
    /// Panics if `idx.len() != x.len()` or any index `≥ len`.
    pub fn scatter_add(&mut self, x: VarId, idx: Arc<Vec<u32>>, len: usize) -> VarId {
        assert_eq!(self.lens[x.index()], idx.len(), "scatter length mismatch");
        assert!(
            idx.iter().all(|&i| (i as usize) < len),
            "scatter index out of range"
        );
        self.push(Op::ScatterAdd { x, idx }, len)
    }

    /// Applies an elementwise [`Activation`].
    pub fn activate(&mut self, x: VarId, kind: Activation) -> VarId {
        let len = self.lens[x.index()];
        self.push(Op::Activate { x, kind }, len)
    }

    /// Scalar sum of all elements.
    pub fn sum_all(&mut self, x: VarId) -> VarId {
        self.push(Op::SumAll { x }, 1)
    }

    /// Scalar dot product with a constant weight vector.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn dot_const(&mut self, x: VarId, w: Arc<Vec<f32>>) -> VarId {
        assert_eq!(self.lens[x.index()], w.len(), "dot_const length mismatch");
        self.push(Op::DotConst { x, w }, 1)
    }

    /// Scalar linear combination `Σ k_j · x_j` of scalar variables — the
    /// final `a1·WL + a2·via + a3·overflow` node.
    ///
    /// # Panics
    ///
    /// Panics if any term is not a scalar.
    pub fn combine(&mut self, terms: Vec<(VarId, f32)>) -> VarId {
        for (v, _) in &terms {
            assert_eq!(self.lens[v.index()], 1, "combine needs scalar terms");
        }
        self.push(Op::Combine { terms }, 1)
    }

    fn check_same_len(&self, a: VarId, b: VarId) {
        assert_eq!(
            self.lens[a.index()],
            self.lens[b.index()],
            "operand length mismatch"
        );
    }

    /// Current (physical) value buffer of `v` — all batch instances,
    /// instance-major (valid after [`Graph::forward`]).
    pub fn value(&self, v: VarId) -> &[f32] {
        &self.vals[self.range_of(v)]
    }

    /// Value slice of instance `b` of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `b >= batch`.
    pub fn value_at(&self, v: VarId, b: usize) -> &[f32] {
        assert!(b < self.batch, "instance out of range");
        let n = self.lens[v.index()];
        let off = self.offsets[v.index()] + b * n;
        &self.vals[off..off + n]
    }

    /// Current gradient buffer of `v` (valid after [`Graph::backward`];
    /// buffers that cannot influence the most recent loss read as zero).
    pub fn grad(&self, v: VarId) -> &[f32] {
        &self.grads[self.range_of(v)]
    }

    /// Mutable access to a **leaf** buffer (noise, temperature,
    /// warm-started logits).
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a leaf — interior node values are derived.
    pub fn data_mut(&mut self, v: VarId) -> &mut [f32] {
        assert!(
            matches!(self.nodes[v.index()], Op::Leaf { .. }),
            "data_mut on non-leaf"
        );
        let r = self.range_of(v);
        &mut self.vals[r]
    }

    /// Simultaneous mutable value / shared gradient access for one
    /// variable — the optimizer's update view (no gradient clone).
    pub(crate) fn val_grad_mut(&mut self, v: VarId) -> (&mut [f32], &[f32]) {
        let r = self.range_of(v);
        (&mut self.vals[r.clone()], &self.grads[r])
    }

    /// Replaces a leaf's contents.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a leaf or `data` has the wrong length.
    pub fn set_data(&mut self, v: VarId, data: &[f32]) {
        let dst = self.data_mut(v);
        assert_eq!(dst.len(), data.len(), "set_data length mismatch");
        dst.copy_from_slice(data);
    }

    /// The trainable leaves, in creation order.
    pub fn params(&self) -> &[VarId] {
        &self.params
    }

    /// Whether `v` is a trainable leaf (i.e. receives optimizer updates).
    pub fn is_trainable(&self, v: VarId) -> bool {
        matches!(self.nodes[v.index()], Op::Leaf { trainable: true })
    }

    /// Physical length of variable `v` (logical length × batch).
    pub fn len_of(&self, v: VarId) -> usize {
        self.lens[v.index()] * self.batch
    }

    /// Logical (per-instance) length of variable `v`.
    pub fn logical_len_of(&self, v: VarId) -> usize {
        self.lens[v.index()]
    }

    /// Number of tape nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Total bytes held in value + gradient buffers — the "device memory"
    /// figure reported in the scalability study (Fig. 5b analogue).
    pub fn bytes(&self) -> usize {
        self.lens.iter().sum::<usize>() * self.batch * 8
    }

    /// Recomputes every node value in topological order.
    ///
    /// Batched graphs whose arena exceeds [`LANE_BLOCK_BYTES`] execute
    /// one lane at a time (see [`Graph::forward_sweep`]); smaller graphs
    /// run one fused op-major sweep across all lanes.
    pub fn forward(&mut self) {
        if self.batch == 1 || self.bytes() <= LANE_BLOCK_BYTES {
            self.forward_sweep(0, self.batch);
        } else {
            for lane in 0..self.batch {
                self.forward_sweep(lane, 1);
            }
        }
    }

    /// One topological-order value sweep over `bw` consecutive lanes
    /// starting at `lane`.
    ///
    /// Lane-blocked scheduling (`bw == 1`, one call per lane) keeps a
    /// big batched graph's producer→consumer buffer pairs inside the
    /// same cache footprint a single-instance run enjoys; the op-major
    /// fused sweep (`lane == 0`, `bw == batch`) amortizes dispatch
    /// overhead when the whole arena is cache-resident anyway. Both
    /// orders compute bit-identical lanes: every element is produced by
    /// the same kernel arithmetic either way.
    fn forward_sweep(&mut self, lane: usize, bw: usize) {
        for i in 0..self.nodes.len() {
            if matches!(self.nodes[i], Op::Leaf { .. }) {
                continue;
            }
            // Inputs strictly precede node i, so splitting the value arena
            // at the node's offset makes every input readable while the
            // node's own buffer is written.
            let (head, tail) = self.vals.split_at_mut(self.offsets[i]);
            let n_i = self.lens[i];
            let out = &mut tail[lane * n_i..(lane + bw) * n_i];
            let (offsets, lens) = (&self.offsets, &self.lens);
            let get = |v: VarId| -> &[f32] {
                let j = v.index();
                let (o, n) = (offsets[j], lens[j]);
                &head[o + lane * n..o + (lane + bw) * n]
            };
            self.nodes[i].forward(&get, out, bw);
        }
    }

    /// Computes (and caches) the loss-reachability plan: the set of nodes
    /// with a differentiable path to `loss`, plus the merged gradient
    /// ranges a backward sweep must zero. Called automatically by
    /// [`Graph::backward`]; model builders call it eagerly so the
    /// analysis cost sits at build time, not in the first iteration.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not a scalar.
    pub fn prepare_backward(&mut self, loss: VarId) {
        assert_eq!(self.lens[loss.index()], 1, "loss must be scalar");
        if let Some(p) = &self.plan {
            if p.loss == loss && p.num_nodes == self.nodes.len() {
                return;
            }
        }
        // The plan changed (new loss or new nodes): clear the whole arena
        // once so gradients accumulated under a previous plan cannot leak
        // through buffers the new plan never touches.
        self.grads.fill(0.0);
        let n = self.nodes.len();
        let mut reachable = vec![false; n];
        reachable[loss.index()] = true;
        // Reverse sweep: nodes after the loss cannot influence it (the
        // tape is topologically ordered), so start at the loss itself.
        for i in (0..=loss.index()).rev() {
            if reachable[i] {
                self.nodes[i].for_each_grad_input(|v| reachable[v.index()] = true);
            }
        }
        let mut zero_runs: Vec<(usize, usize)> = Vec::new();
        for (i, &live) in reachable.iter().enumerate() {
            if !live || self.lens[i] == 0 {
                continue;
            }
            let (off, len) = (self.offsets[i], self.lens[i] * self.batch);
            match zero_runs.last_mut() {
                Some((ro, rl)) if *ro + *rl == off => *rl += len,
                _ => zero_runs.push((off, len)),
            }
        }
        self.plan = Some(BackwardPlan {
            loss,
            num_nodes: n,
            reachable,
            zero_runs,
        });
    }

    /// Accumulates `∂loss/∂v` into every gradient buffer (for every batch
    /// instance: the loss is seeded with 1 at all `batch` elements).
    ///
    /// Only nodes on a differentiable path to `loss` (per the cached
    /// [`Graph::prepare_backward`] plan) are visited or re-zeroed; all
    /// other gradient buffers stay zero. Derivative computation and
    /// gradient accumulation are fused into a single pass per op (one
    /// read of the values, one write of the gradients — see
    /// [`crate::kernels`]); elementwise accumulations above
    /// [`crate::parallel::PAR_THRESHOLD`] run on the worker pool.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not a (logical) scalar.
    pub fn backward(&mut self, loss: VarId) {
        if parallel::exec_mode() == parallel::ExecMode::Spawn {
            // Benchmark baseline: reproduce the pre-pool executor exactly
            // (see backward_spawn_baseline).
            return self.backward_spawn_baseline(loss);
        }
        self.prepare_backward(loss);
        let plan = self.plan.take().expect("plan just prepared");
        for &(off, len) in &plan.zero_runs {
            self.grads[off..off + len].fill(0.0);
        }
        let batch = self.batch;
        let loss_off = self.offsets[loss.index()];
        self.grads[loss_off..loss_off + batch].fill(1.0);
        // Same scheduling split as [`Graph::forward`]: lane-blocked
        // sweeps once the batched arena outgrows the cache budget.
        if batch == 1 || self.bytes() <= LANE_BLOCK_BYTES {
            self.backward_sweep(&plan, loss, 0, batch);
        } else {
            for lane in 0..batch {
                self.backward_sweep(&plan, loss, lane, 1);
            }
        }
        self.plan = Some(plan);
    }

    /// One reverse sweep accumulating gradients for `bw` consecutive
    /// lanes starting at `lane` — the backward counterpart of
    /// [`Graph::forward_sweep`], with the same bit-identity guarantee
    /// between the fused (`bw == batch`) and lane-blocked (`bw == 1`)
    /// orders.
    fn backward_sweep(&mut self, plan: &BackwardPlan, loss: VarId, lane: usize, bw: usize) {
        for i in (0..=loss.index()).rev() {
            if !plan.reachable[i] {
                continue;
            }
            // Split so that input gradients (offsets < offsets[i]) are
            // mutable while the output gradient is readable.
            let (gin, gtail) = self.grads.split_at_mut(self.offsets[i]);
            let n_i = self.lens[i];
            let gout: &[f32] = &gtail[lane * n_i..(lane + bw) * n_i];
            // Statically reachable but numerically dead (e.g. an overflow
            // activation that never saturated): every kernel accumulates
            // `+= gout·…`, so an all-zero output gradient contributes
            // nothing. The scan short-circuits on the first live element,
            // so live nodes pay one read.
            if gout.iter().all(|&g| g == 0.0) {
                continue;
            }
            let batch = bw;
            let (offsets, lens) = (&self.offsets, &self.lens);
            let vals = &self.vals;
            let val = |v: VarId| -> &[f32] {
                let j = v.index();
                let (o, n) = (offsets[j], lens[j]);
                &vals[o + lane * n..o + (lane + bw) * n]
            };
            match &self.nodes[i] {
                Op::Leaf { .. } => {}
                Op::Add { a, b } => {
                    if a == b {
                        // g + g == 2g exactly in IEEE f32.
                        par_axpy(slice_mut(gin, offsets, lens, lane, batch, *a), gout, 2.0);
                    } else {
                        // Fused: both operand gradients in one gout read.
                        let (ga, gb) = slice_mut2(gin, offsets, lens, lane, batch, *a, *b);
                        let (pa, pb) = (SendPtr(ga.as_mut_ptr()), SendPtr(gb.as_mut_ptr()));
                        parallel::par_apply(gout.len(), move |r| {
                            // SAFETY: par_apply ranges are disjoint.
                            let (a, b) = unsafe { (sub_mut(pa, &r), sub_mut(pb, &r)) };
                            kernels::add_bwd(a, b, &gout[r]);
                        });
                    }
                }
                Op::Mul { a, b } => {
                    let (xa, xb) = (val(*a), val(*b));
                    if a == b {
                        let ga = slice_mut(gin, offsets, lens, lane, batch, *a);
                        let pa = SendPtr(ga.as_mut_ptr());
                        parallel::par_apply(gout.len(), move |r| {
                            // SAFETY: par_apply ranges are disjoint.
                            let g = unsafe { sub_mut(pa, &r) };
                            kernels::mul_bwd_same(g, &gout[r.clone()], &xa[r]);
                        });
                    } else {
                        // Fused: one gout read feeds both operand grads.
                        let (ga, gb) = slice_mut2(gin, offsets, lens, lane, batch, *a, *b);
                        let (pa, pb) = (SendPtr(ga.as_mut_ptr()), SendPtr(gb.as_mut_ptr()));
                        parallel::par_apply(gout.len(), move |r| {
                            // SAFETY: par_apply ranges are disjoint.
                            let (a, b) = unsafe { (sub_mut(pa, &r), sub_mut(pb, &r)) };
                            kernels::mul_bwd(a, b, &gout[r.clone()], &xa[r.clone()], &xb[r]);
                        });
                    }
                }
                Op::Scale { x, k } => {
                    par_axpy(slice_mut(gin, offsets, lens, lane, batch, *x), gout, *k)
                }
                Op::AddConst { x, .. } => {
                    par_axpy(slice_mut(gin, offsets, lens, lane, batch, *x), gout, 1.0)
                }
                Op::MulConst { x, c } => {
                    // One dispatch over the physical buffer; ranges split
                    // at instance boundaries so `c` indexes stay logical.
                    let gx = slice_mut(gin, offsets, lens, lane, batch, *x);
                    let c = &**c;
                    let n = c.len();
                    let p = SendPtr(gx.as_mut_ptr());
                    parallel::par_apply(n * batch, move |r| {
                        parallel::split_batch(r, n, |b, lr| {
                            let phys = b * n + lr.start..b * n + lr.end;
                            // SAFETY: par_apply ranges are disjoint.
                            let g = unsafe { sub_mut(p, &phys) };
                            kernels::fma_accum(g, &gout[phys], &c[lr]);
                        });
                    });
                }
                Op::DivByScalarVar { x, s } => {
                    let sv = val(*s);
                    let gx = slice_mut(gin, offsets, lens, lane, batch, *x);
                    let n = gx.len() / batch;
                    let p = SendPtr(gx.as_mut_ptr());
                    parallel::par_apply(n * batch, move |r| {
                        parallel::split_batch(r, n, |b, _lr| {
                            let phys = b * n + _lr.start..b * n + _lr.end;
                            // SAFETY: par_apply ranges are disjoint.
                            let g = unsafe { sub_mut(p, &phys) };
                            kernels::axpy(g, &gout[phys], 1.0 / sv[b]);
                        });
                    });
                }
                Op::SegSoftmax { x, seg } => {
                    // p is this node's own (already computed) output. All
                    // batch × num_segments backward solves go out in one
                    // dispatch; each (instance, segment) window is
                    // disjoint and computed by exactly one worker, so the
                    // result is bit-stable at any thread count.
                    let n = self.lens[i];
                    let p_off = self.offsets[i] + lane * n;
                    let p_all = &vals[p_off..p_off + n * batch];
                    let gx = slice_mut(gin, offsets, lens, lane, batch, *x);
                    let seg = &**seg;
                    let nseg = seg.num_segments();
                    let gxp = SendPtr(gx.as_mut_ptr());
                    parallel::par_blocks(batch * nseg, batch * n, move |block| {
                        for t in block {
                            let (b, s) = (t / nseg, t % nseg);
                            let r = seg.segment(s);
                            let phys = b * n + r.start..b * n + r.end;
                            // SAFETY: (instance, segment) windows partition gx.
                            let g = unsafe { sub_mut(gxp, &phys) };
                            kernels::seg_softmax_bwd(&p_all[phys.clone()], &gout[phys], g);
                        }
                    });
                }
                Op::Gather { x, idx } => {
                    let gx = slice_mut(gin, offsets, lens, lane, batch, *x);
                    parallel::par_scatter_add_batched(gx, idx, gout, batch);
                }
                Op::ScatterAdd { x, idx, .. } => {
                    let gx = slice_mut(gin, offsets, lens, lane, batch, *x);
                    let idx = &**idx;
                    let n = idx.len();
                    let n_out = self.lens[i];
                    let p = SendPtr(gx.as_mut_ptr());
                    parallel::par_apply(n * batch, move |r| {
                        parallel::split_batch(r, n, |b, lr| {
                            let goutb = &gout[b * n_out..(b + 1) * n_out];
                            let phys = b * n + lr.start..b * n + lr.end;
                            // SAFETY: par_apply ranges are disjoint.
                            let g = unsafe { sub_mut(p, &phys) };
                            kernels::scatter_bwd(g, goutb, &idx[lr]);
                        });
                    });
                }
                Op::Activate { x, kind } => {
                    let xv = val(*x);
                    let kind = *kind;
                    let gx = slice_mut(gin, offsets, lens, lane, batch, *x);
                    let p = SendPtr(gx.as_mut_ptr());
                    parallel::par_apply(gout.len(), move |r| {
                        // SAFETY: par_apply ranges are disjoint.
                        let g = unsafe { sub_mut(p, &r) };
                        kernels::activate_bwd(kind, &xv[r.clone()], &gout[r], g);
                    });
                }
                Op::SumAll { x } => {
                    let gx = slice_mut(gin, offsets, lens, lane, batch, *x);
                    let n = gx.len() / batch;
                    let p = SendPtr(gx.as_mut_ptr());
                    parallel::par_apply(n * batch, move |r| {
                        parallel::split_batch(r, n, |b, lr| {
                            let phys = b * n + lr.start..b * n + lr.end;
                            // SAFETY: par_apply ranges are disjoint.
                            let d = unsafe { sub_mut(p, &phys) };
                            kernels::add_scalar(d, gout[b]);
                        });
                    });
                }
                Op::DotConst { x, w } => {
                    let gx = slice_mut(gin, offsets, lens, lane, batch, *x);
                    let w = &**w;
                    let n = w.len();
                    let p = SendPtr(gx.as_mut_ptr());
                    parallel::par_apply(n * batch, move |r| {
                        parallel::split_batch(r, n, |b, lr| {
                            let phys = b * n + lr.start..b * n + lr.end;
                            // SAFETY: par_apply ranges are disjoint.
                            let g = unsafe { sub_mut(p, &phys) };
                            kernels::axpy(g, &w[lr], gout[b]);
                        });
                    });
                }
                Op::Combine { terms } => {
                    for (v, k) in terms {
                        let off = offsets[v.index()] + lane;
                        for b in 0..batch {
                            gin[off + b] += gout[b] * k;
                        }
                    }
                }
            }
        }
    }

    /// The pre-pool backward pass, kept (modulo the arena layout) as the
    /// [`parallel::ExecMode::Spawn`] benchmark baseline: a full gradient
    /// zero-fill every iteration, an O(len) all-zero scan per node in
    /// place of the reachability plan, and sequential kernels — the only
    /// parallel backward kernel the old executor had was the gather
    /// scatter-add, which [`par_scatter_add`] reproduces in Spawn mode.
    fn backward_spawn_baseline(&mut self, loss: VarId) {
        assert_eq!(self.lens[loss.index()], 1, "loss must be scalar");
        assert_eq!(
            self.batch, 1,
            "the legacy spawn baseline predates the batch axis"
        );
        self.grads.fill(0.0);
        self.grads[self.offsets[loss.index()]] = 1.0;
        for i in (0..=loss.index()).rev() {
            let (gin, gtail) = self.grads.split_at_mut(self.offsets[i]);
            let gout: &[f32] = &gtail[..self.lens[i]];
            if gout.iter().all(|&g| g == 0.0) {
                continue;
            }
            let (offsets, lens) = (&self.offsets, &self.lens);
            let vals = &self.vals;
            let val = |v: VarId| -> &[f32] {
                let j = v.index();
                &vals[offsets[j]..offsets[j] + lens[j]]
            };
            match &self.nodes[i] {
                Op::Leaf { .. } => {}
                Op::Add { a, b } => {
                    seq_axpy(slice_mut(gin, offsets, lens, 0, 1, *a), gout, 1.0);
                    seq_axpy(slice_mut(gin, offsets, lens, 0, 1, *b), gout, 1.0);
                }
                Op::Mul { a, b } => {
                    let (xa, xb) = (val(*a), val(*b));
                    if a == b {
                        let ga = slice_mut(gin, offsets, lens, 0, 1, *a);
                        for i in 0..ga.len() {
                            ga[i] += 2.0 * gout[i] * xa[i];
                        }
                    } else {
                        let ga = slice_mut(gin, offsets, lens, 0, 1, *a);
                        for i in 0..ga.len() {
                            ga[i] += gout[i] * xb[i];
                        }
                        let gb = slice_mut(gin, offsets, lens, 0, 1, *b);
                        for i in 0..gb.len() {
                            gb[i] += gout[i] * xa[i];
                        }
                    }
                }
                Op::Scale { x, k } => seq_axpy(slice_mut(gin, offsets, lens, 0, 1, *x), gout, *k),
                Op::AddConst { x, .. } => {
                    seq_axpy(slice_mut(gin, offsets, lens, 0, 1, *x), gout, 1.0)
                }
                Op::MulConst { x, c } => {
                    let gx = slice_mut(gin, offsets, lens, 0, 1, *x);
                    for i in 0..gx.len() {
                        gx[i] += gout[i] * c[i];
                    }
                }
                Op::DivByScalarVar { x, s } => {
                    let inv = 1.0 / val(*s)[0];
                    seq_axpy(slice_mut(gin, offsets, lens, 0, 1, *x), gout, inv);
                }
                Op::SegSoftmax { x, seg } => {
                    let p = &vals[self.offsets[i]..self.offsets[i] + self.lens[i]];
                    let gx = slice_mut(gin, offsets, lens, 0, 1, *x);
                    for s in 0..seg.num_segments() {
                        let r = seg.segment(s);
                        let dot: f32 = gout[r.clone()]
                            .iter()
                            .zip(&p[r.clone()])
                            .map(|(g, p)| g * p)
                            .sum();
                        for j in r {
                            gx[j] += p[j] * (gout[j] - dot);
                        }
                    }
                }
                Op::Gather { x, idx } => {
                    par_scatter_add(slice_mut(gin, offsets, lens, 0, 1, *x), idx, gout);
                }
                Op::ScatterAdd { x, idx, .. } => {
                    let gx = slice_mut(gin, offsets, lens, 0, 1, *x);
                    for j in 0..gx.len() {
                        gx[j] += gout[idx[j] as usize];
                    }
                }
                Op::Activate { x, kind } => {
                    let xv = val(*x);
                    let kind = *kind;
                    let gx = slice_mut(gin, offsets, lens, 0, 1, *x);
                    for i in 0..gx.len() {
                        gx[i] += gout[i] * kind.grad(xv[i]);
                    }
                }
                Op::SumAll { x } => {
                    let g = gout[0];
                    for v in slice_mut(gin, offsets, lens, 0, 1, *x) {
                        *v += g;
                    }
                }
                Op::DotConst { x, w } => {
                    let g = gout[0];
                    let gx = slice_mut(gin, offsets, lens, 0, 1, *x);
                    for (v, wi) in gx.iter_mut().zip(w.iter()) {
                        *v += g * wi;
                    }
                }
                Op::Combine { terms } => {
                    let g = gout[0];
                    for (v, k) in terms {
                        gin[offsets[v.index()]] += g * k;
                    }
                }
            }
        }
    }
}

/// Sequential `dst += k·src` — the legacy baseline's axpy.
fn seq_axpy(dst: &mut [f32], src: &[f32], k: f32) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d += k * s;
    }
}

/// Mutable view of `v`'s (physical) gradient inside the lower half of a
/// split arena.
fn slice_mut<'a>(
    gin: &'a mut [f32],
    offsets: &[usize],
    lens: &[usize],
    lane: usize,
    batch: usize,
    v: VarId,
) -> &'a mut [f32] {
    let j = v.index();
    let o = offsets[j] + lane * lens[j];
    &mut gin[o..o + lens[j] * batch]
}

/// Two simultaneous mutable gradient views for the fused two-operand
/// backward kernels.
///
/// # Panics
///
/// Panics if `a == b` (their arena ranges would alias).
fn slice_mut2<'a>(
    gin: &'a mut [f32],
    offsets: &[usize],
    lens: &[usize],
    lane: usize,
    batch: usize,
    a: VarId,
    b: VarId,
) -> (&'a mut [f32], &'a mut [f32]) {
    assert_ne!(a, b, "fused backward needs distinct operands");
    let (ia, ib) = (a.index(), b.index());
    let (oa, la) = (offsets[ia] + lane * lens[ia], lens[ia] * batch);
    let (ob, lb) = (offsets[ib] + lane * lens[ib], lens[ib] * batch);
    let base = gin.as_mut_ptr();
    debug_assert!(oa + la <= gin.len() && ob + lb <= gin.len());
    debug_assert!(oa + la <= ob || ob + lb <= oa, "node ranges overlap");
    // SAFETY: distinct nodes own disjoint arena ranges (checked above).
    unsafe {
        (
            std::slice::from_raw_parts_mut(base.add(oa), la),
            std::slice::from_raw_parts_mut(base.add(ob), lb),
        )
    }
}

/// Mutable subslice `r` of the buffer behind `p` — the per-range window
/// the fused parallel kernels write.
///
/// # Safety
///
/// `p` must point at a live buffer covering `r`, and concurrent callers
/// must use disjoint ranges.
unsafe fn sub_mut<'a>(p: SendPtr<f32>, r: &std::ops::Range<usize>) -> &'a mut [f32] {
    std::slice::from_raw_parts_mut(p.get().add(r.start), r.len())
}

/// Validates index tables against a target length — the fallible precursor
/// to [`Graph::gather`] / [`Graph::scatter_add`] for untrusted input.
///
/// # Errors
///
/// Returns [`AutodiffError::IndexOutOfRange`] on the first bad index.
pub fn check_indices(idx: &[u32], len: usize) -> Result<(), AutodiffError> {
    for &i in idx {
        if i as usize >= len {
            return Err(AutodiffError::IndexOutOfRange { index: i, len });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adam::Adam;

    fn finite_diff_loss<F>(g: &mut Graph, w: VarId, loss: VarId, build_eval: F) -> Vec<f32>
    where
        F: Fn(&mut Graph) -> f32,
    {
        let h = 1e-3;
        let n = g.len_of(w);
        let mut grads = Vec::with_capacity(n);
        for i in 0..n {
            let orig = g.value(w)[i];
            g.data_mut(w)[i] = orig + h;
            let up = build_eval(g);
            g.data_mut(w)[i] = orig - h;
            let dn = build_eval(g);
            g.data_mut(w)[i] = orig;
            grads.push((up - dn) / (2.0 * h));
        }
        let _ = loss;
        grads
    }

    #[test]
    fn add_mul_scale_forward() {
        let mut g = Graph::new();
        let a = g.param(vec![1.0, 2.0]);
        let b = g.input(vec![3.0, 4.0]);
        let s = g.add(a, b);
        let m = g.mul(s, s);
        let y = g.scale(m, 0.5);
        g.forward();
        assert_eq!(g.value(y), &[8.0, 18.0]);
    }

    #[test]
    fn gradient_of_quadratic() {
        // loss = Σ (w + c)² → dw = 2(w + c)
        let mut g = Graph::new();
        let w = g.param(vec![1.0, -2.0, 0.5]);
        let c = Arc::new(vec![0.5, 1.0, -1.0]);
        let shifted = g.add_const(w, c.clone());
        let sq = g.mul(shifted, shifted);
        let loss = g.sum_all(sq);
        g.forward();
        g.backward(loss);
        for i in 0..3 {
            let want = 2.0 * (g.value(w)[i] + c[i]);
            assert!((g.grad(w)[i] - want).abs() < 1e-5);
        }
    }

    #[test]
    fn gather_scatter_roundtrip_gradients() {
        // demand[e] = Σ paths through e; loss = Σ demand² — classic DGR shape
        let mut g = Graph::new();
        let w = g.param(vec![0.3, 0.7, 0.1, 0.9]);
        let idx = Arc::new(vec![0u32, 1, 1, 2]);
        let d = g.scatter_add(w, idx.clone(), 3);
        let sq = g.mul(d, d);
        let loss = g.sum_all(sq);
        g.forward();
        g.backward(loss);
        // d = [0.3, 0.8, 0.9]; dw_i = 2·d[idx[i]]
        let d_vals = [0.3f32, 0.8, 0.9];
        for i in 0..4 {
            let want = 2.0 * d_vals[idx[i] as usize];
            assert!((g.grad(w)[i] - want).abs() < 1e-5);
        }
    }

    #[test]
    fn gather_forward_and_grad() {
        let mut g = Graph::new();
        let w = g.param(vec![1.0, 2.0]);
        let idx = Arc::new(vec![0u32, 0, 1]);
        let y = g.gather(w, idx);
        let loss = g.sum_all(y);
        g.forward();
        assert_eq!(g.value(y), &[1.0, 1.0, 2.0]);
        g.backward(loss);
        assert_eq!(g.grad(w), &[2.0, 1.0]); // index 0 gathered twice
    }

    #[test]
    fn segmented_softmax_normalizes_per_group() {
        let mut g = Graph::new();
        let w = g.param(vec![1.0, 2.0, 0.0, 0.0, 5.0]);
        let seg = Arc::new(Segments::from_offsets(vec![0, 2, 5]).unwrap());
        let p = g.segmented_softmax(w, seg);
        g.forward();
        let v = g.value(p);
        assert!((v[0] + v[1] - 1.0).abs() < 1e-6);
        assert!((v[2] + v[3] + v[4] - 1.0).abs() < 1e-6);
        assert!(v[4] > 0.9); // logit 5 dominates its group
    }

    #[test]
    fn softmax_gradient_matches_finite_difference() {
        let build = || {
            let mut g = Graph::new();
            let w = g.param(vec![0.2, -0.4, 0.9, 0.1]);
            let seg = Arc::new(Segments::from_offsets(vec![0, 2, 4]).unwrap());
            let p = g.segmented_softmax(w, seg);
            let cost = Arc::new(vec![1.0, 3.0, -2.0, 0.5]);
            let loss = g.dot_const(p, cost);
            (g, w, loss)
        };
        let (mut g, w, loss) = build();
        g.forward();
        g.backward(loss);
        let analytic: Vec<f32> = g.grad(w).to_vec();
        let numeric = finite_diff_loss(&mut g, w, loss, |g| {
            g.forward();
            g.value(loss)[0]
        });
        for (a, n) in analytic.iter().zip(&numeric) {
            assert!((a - n).abs() < 1e-3, "analytic {a} vs numeric {n}");
        }
    }

    #[test]
    fn activation_gradients_flow() {
        for kind in Activation::ALL {
            let mut g = Graph::new();
            let w = g.param(vec![-1.5, -0.2, 0.4, 2.0]);
            let y = g.activate(w, kind);
            let loss = g.sum_all(y);
            g.forward();
            g.backward(loss);
            let analytic = g.grad(w).to_vec();
            let numeric = finite_diff_loss(&mut g, w, loss, |g| {
                g.forward();
                g.value(loss)[0]
            });
            for (i, (a, n)) in analytic.iter().zip(&numeric).enumerate() {
                assert!(
                    (a - n).abs() < 2e-2,
                    "{kind}: grad[{i}] analytic {a} vs numeric {n}"
                );
            }
        }
    }

    #[test]
    fn div_by_scalar_temperature() {
        let mut g = Graph::new();
        let w = g.param(vec![2.0, 4.0]);
        let t = g.input(vec![2.0]);
        let y = g.div_by_scalar(w, t);
        let loss = g.sum_all(y);
        g.forward();
        assert_eq!(g.value(y), &[1.0, 2.0]);
        g.backward(loss);
        assert_eq!(g.grad(w), &[0.5, 0.5]);
        // temperature receives no gradient
        assert_eq!(g.grad(t), &[0.0]);
        // updating the leaf changes the next forward
        g.set_data(t, &[4.0]);
        g.forward();
        assert_eq!(g.value(y), &[0.5, 1.0]);
    }

    #[test]
    fn combine_weights_scalars() {
        let mut g = Graph::new();
        let a = g.param(vec![1.0]);
        let b = g.param(vec![2.0]);
        let sa = g.sum_all(a);
        let sb = g.sum_all(b);
        let loss = g.combine(vec![(sa, 0.5), (sb, 4.0)]);
        g.forward();
        assert_eq!(g.value(loss)[0], 0.5 + 8.0);
        g.backward(loss);
        assert_eq!(g.grad(a), &[0.5]);
        assert_eq!(g.grad(b), &[4.0]);
    }

    #[test]
    #[should_panic(expected = "data_mut on non-leaf")]
    fn data_mut_rejects_interior_nodes() {
        let mut g = Graph::new();
        let a = g.param(vec![1.0]);
        let y = g.scale(a, 2.0);
        let _ = g.data_mut(y);
    }

    #[test]
    fn check_indices_reports_offender() {
        assert!(check_indices(&[0, 1, 2], 3).is_ok());
        assert_eq!(
            check_indices(&[0, 5], 3),
            Err(AutodiffError::IndexOutOfRange { index: 5, len: 3 })
        );
    }

    #[test]
    fn bytes_accounts_values_and_grads() {
        let mut g = Graph::new();
        let a = g.param(vec![0.0; 100]);
        let _ = g.scale(a, 1.0);
        assert_eq!(g.bytes(), 200 * 8);
    }

    #[test]
    fn dead_branches_are_skipped_but_stay_zero() {
        let mut g = Graph::new();
        let w = g.param(vec![1.0, 2.0]);
        let dead_in = g.param(vec![3.0, 5.0]);
        let dead = g.mul(dead_in, dead_in); // never feeds the loss
        let y = g.mul(w, w);
        let loss = g.sum_all(y);
        g.forward();
        g.backward(loss);
        assert_eq!(g.grad(w), &[2.0, 4.0]);
        assert_eq!(g.grad(dead), &[0.0, 0.0]);
        assert_eq!(g.grad(dead_in), &[0.0, 0.0]);
    }

    #[test]
    fn switching_losses_rebuilds_the_plan_and_clears_stale_grads() {
        let mut g = Graph::new();
        let a = g.param(vec![1.0]);
        let b = g.param(vec![2.0]);
        let la = g.sum_all(a);
        let lb = g.sum_all(b);
        g.forward();
        g.backward(la);
        assert_eq!(g.grad(a), &[1.0]);
        assert_eq!(g.grad(b), &[0.0]);
        g.backward(lb);
        // a is unreachable from lb: its old gradient must not linger
        assert_eq!(g.grad(a), &[0.0]);
        assert_eq!(g.grad(b), &[1.0]);
    }

    #[test]
    fn temperature_scalar_does_not_keep_its_producers_alive() {
        // reachability must not cross the non-differentiable temperature
        // edge of DivByScalarVar
        let mut g = Graph::new();
        let w = g.param(vec![1.0, 2.0]);
        let t_src = g.param(vec![3.0]);
        let t = g.scale(t_src, 1.0);
        let y = g.div_by_scalar(w, t);
        let loss = g.sum_all(y);
        g.forward();
        g.backward(loss);
        assert_eq!(g.grad(t_src), &[0.0]);
        assert_eq!(g.grad(t), &[0.0]);
        assert!((g.grad(w)[0] - 1.0 / 3.0).abs() < 1e-6);
    }

    /// A miniature DGR-shaped model (softmax → gather → scatter →
    /// activation → combined loss) built on an arbitrary-batch graph.
    fn build_mini_model(g: &mut Graph, w_per_instance: &[Vec<f32>]) -> (VarId, VarId, VarId) {
        let n = w_per_instance[0].len();
        let stacked: Vec<f32> = w_per_instance.concat();
        let w = g.param_stacked(n, stacked);
        let t = g.input(vec![2.0]);
        let z = g.div_by_scalar(w, t);
        let seg = Arc::new(Segments::from_offsets(vec![0, 2, n as u32]).unwrap());
        let p = g.segmented_softmax(z, seg);
        let idx = Arc::new(vec![0u32, 1, 1, 3, 2]);
        let gathered = g.gather(p, idx.clone());
        let d = g.scatter_add(gathered, Arc::new(vec![0u32, 0, 1, 2, 2]), 3);
        let a = g.activate(d, Activation::Celu);
        let s = g.sum_all(a);
        let wl = g.dot_const(p, Arc::new(vec![0.5; 4]));
        let loss = g.combine(vec![(s, 2.0), (wl, 0.25)]);
        (w, p, loss)
    }

    #[test]
    fn batched_instances_match_standalone_runs_bitwise() {
        let insts = vec![
            vec![0.3, -0.7, 1.1, 0.05],
            vec![-1.2, 0.4, 0.0, 2.0],
            vec![0.0, 0.0, -0.5, 0.25],
        ];
        // Standalone reference runs, one graph per instance.
        let mut want_vals = Vec::new();
        let mut want_grads = Vec::new();
        for inst in &insts {
            let mut g = Graph::new();
            let (w, p, loss) = build_mini_model(&mut g, std::slice::from_ref(inst));
            g.forward();
            g.backward(loss);
            want_vals.push((g.value(p).to_vec(), g.value(loss).to_vec()));
            want_grads.push(g.grad(w).to_vec());
        }
        // One batched graph evaluating all instances per sweep.
        let mut g = Graph::with_batch(insts.len());
        let (w, p, loss) = build_mini_model(&mut g, &insts);
        g.forward();
        g.backward(loss);
        for (b, (wv, wg)) in want_vals.iter().zip(&want_grads).enumerate() {
            assert_eq!(g.value_at(p, b), &wv.0[..], "instance {b} values");
            assert_eq!(g.value_at(loss, b), &wv.1[..], "instance {b} loss");
            let n = g.logical_len_of(w);
            assert_eq!(
                &g.grad(w)[b * n..(b + 1) * n],
                &wg[..],
                "instance {b} grads"
            );
        }
    }

    #[test]
    fn lane_blocked_sweeps_match_fused_sweeps_bitwise() {
        // Big batched graphs switch from one fused op-major sweep to
        // per-lane sweeps (LANE_BLOCK_BYTES); the two schedules must be
        // bit-identical. Drive both orders explicitly on the same model.
        let insts = vec![
            vec![0.3, -0.7, 1.1, 0.05],
            vec![-1.2, 0.4, 0.0, 2.0],
            vec![0.0, 0.0, -0.5, 0.25],
        ];
        let mut fused = Graph::with_batch(insts.len());
        let (_, _, loss_f) = build_mini_model(&mut fused, &insts);
        fused.forward_sweep(0, insts.len());
        fused.prepare_backward(loss_f);
        let plan = fused.plan.take().expect("plan prepared");
        for &(off, len) in &plan.zero_runs {
            fused.grads[off..off + len].fill(0.0);
        }
        let loss_off = fused.offsets[loss_f.index()];
        fused.grads[loss_off..loss_off + insts.len()].fill(1.0);
        fused.backward_sweep(&plan, loss_f, 0, insts.len());
        fused.plan = Some(plan);

        let mut laned = Graph::with_batch(insts.len());
        let (_, _, loss_l) = build_mini_model(&mut laned, &insts);
        for lane in 0..insts.len() {
            laned.forward_sweep(lane, 1);
        }
        laned.prepare_backward(loss_l);
        let plan = laned.plan.take().expect("plan prepared");
        for &(off, len) in &plan.zero_runs {
            laned.grads[off..off + len].fill(0.0);
        }
        let loss_off = laned.offsets[loss_l.index()];
        laned.grads[loss_off..loss_off + insts.len()].fill(1.0);
        for lane in 0..insts.len() {
            laned.backward_sweep(&plan, loss_l, lane, 1);
        }
        laned.plan = Some(plan);

        assert_eq!(fused.vals, laned.vals, "value arenas diverged");
        assert_eq!(fused.grads, laned.grads, "gradient arenas diverged");
    }

    #[test]
    fn batched_adam_updates_instances_independently() {
        // Two instances with identical data must track the single-instance
        // trajectory exactly, step after step.
        let inst = vec![1.0f32, -2.0, 0.5, 0.8];
        let mut single = Graph::new();
        let (ws, _, ls) = build_mini_model(&mut single, std::slice::from_ref(&inst));
        let mut adam_s = Adam::new(&single, 0.1);

        let mut batched = Graph::with_batch(2);
        let (wb, _, lb) = build_mini_model(&mut batched, &[inst.clone(), inst.clone()]);
        let mut adam_b = Adam::new(&batched, 0.1);

        for _ in 0..5 {
            single.forward();
            single.backward(ls);
            adam_s.step(&mut single);
            batched.forward();
            batched.backward(lb);
            adam_b.step(&mut batched);
        }
        let n = inst.len();
        for b in 0..2 {
            assert_eq!(
                &batched.value(wb)[b * n..(b + 1) * n],
                single.value(ws),
                "instance {b} diverged from the standalone trajectory"
            );
        }
    }

    #[test]
    fn param_replication_broadcasts_across_batch() {
        let mut g = Graph::with_batch(3);
        let w = g.param(vec![1.0, 2.0]);
        assert_eq!(g.len_of(w), 6);
        assert_eq!(g.logical_len_of(w), 2);
        assert_eq!(g.value(w), &[1.0, 2.0, 1.0, 2.0, 1.0, 2.0]);
        let y = g.scale(w, 2.0);
        let loss = g.sum_all(y);
        g.forward();
        assert_eq!(g.value(loss), &[6.0, 6.0, 6.0]);
        g.backward(loss);
        assert_eq!(g.grad(w), &[2.0; 6]);
    }

    #[test]
    fn backward_is_repeatable_on_the_arena() {
        // gradients must not accumulate across backward() calls
        let mut g = Graph::new();
        let w = g.param(vec![1.0, -1.0]);
        let sq = g.mul(w, w);
        let loss = g.sum_all(sq);
        g.forward();
        g.backward(loss);
        let first = g.grad(w).to_vec();
        g.backward(loss);
        assert_eq!(g.grad(w), &first[..]);
    }
}
