//! Multi-threaded CPU kernels — the GPU-substitution layer.
//!
//! The paper runs its tensor ops as CUDA kernels. Here, dense ops are
//! sharded across a **persistent worker pool**: threads are spawned once
//! (on first parallel dispatch), then park on a condvar between jobs. A
//! job is an index range of chunks; workers race to claim chunk indices,
//! so a dispatch costs two mutex/condvar handshakes instead of a round of
//! `thread::spawn`/`join` per op per iteration.
//!
//! # Determinism contract
//!
//! Work is partitioned into [`num_threads`] chunks **by index**, not by
//! worker: which OS thread executes a chunk never affects where its
//! results land. Pure elementwise maps are therefore bit-reproducible
//! across *any* thread count. Reductions (scatter-add, sums, dots) use
//! per-chunk partial buffers merged in chunk order, so they are
//! **bit-reproducible for a fixed thread count** — no atomics, no
//! scheduling-dependent float ordering (CUDA atomics give neither).
//! Across *different* thread counts the summation order changes, so
//! reductions agree only up to float associativity.
//!
//! Below [`PAR_THRESHOLD`] elements the sequential path is used; dispatch
//! overhead dominates for small tensors.
//!
//! [`ExecMode::Spawn`] preserves the previous executor (a scoped
//! spawn-per-op forward with sequential reductions elsewhere) purely so
//! the benchmark suite can measure the pool against it; production code
//! always runs [`ExecMode::Pool`].
//!
//! # Observability
//!
//! When `dgr_obs::enabled()` is on, the pool records `pool.jobs_dispatched`,
//! `pool.chunks_claimed` (counted at the claim site, so worker and
//! dispatcher claims both show), `pool.busy_ns`, `pool.seq_fallbacks` and
//! a `pool.dispatch_ns` histogram. When off, every recording site reduces
//! to one relaxed atomic load and a predictable branch, keeping the
//! uninstrumented dispatch path bench-neutral.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};
use std::time::Instant;

/// Cached handles to the pool's observability metrics. Registration takes
/// the `dgr-obs` registry mutex once; after that every recording is a
/// relaxed atomic op gated on `dgr_obs::enabled()` (one load + a
/// predictable branch when observability is off, so the uninstrumented
/// dispatch path stays bench-neutral).
struct PoolMetrics {
    /// Jobs fanned out through the pool (one per `run_chunks` dispatch).
    jobs_dispatched: &'static dgr_obs::Counter,
    /// Chunks claimed by workers and the dispatcher, counted at the claim
    /// site.
    chunks_claimed: &'static dgr_obs::Counter,
    /// Summed wall-clock nanoseconds between job publication and the last
    /// chunk completing (the pool's busy time).
    busy_ns: &'static dgr_obs::Counter,
    /// Kernel calls that took the sequential fallback (below
    /// [`PAR_THRESHOLD`], single-threaded, or legacy executor).
    seq_fallbacks: &'static dgr_obs::Counter,
    /// Distribution of per-dispatch wall times, in nanoseconds.
    dispatch_ns: &'static dgr_obs::Histogram,
}

fn pool_metrics() -> &'static PoolMetrics {
    static METRICS: OnceLock<PoolMetrics> = OnceLock::new();
    METRICS.get_or_init(|| PoolMetrics {
        jobs_dispatched: dgr_obs::counter("pool.jobs_dispatched"),
        chunks_claimed: dgr_obs::counter("pool.chunks_claimed"),
        busy_ns: dgr_obs::counter("pool.busy_ns"),
        seq_fallbacks: dgr_obs::counter("pool.seq_fallbacks"),
        dispatch_ns: dgr_obs::histogram("pool.dispatch_ns"),
    })
}

/// Minimum number of elements before an op fans out to worker threads.
pub const PAR_THRESHOLD: usize = 1 << 15;

static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// The machine's parallelism, probed once. `available_parallelism()` is a
/// syscall (`sched_getaffinity`) costing microseconds on some kernels —
/// uncached it dominated small sequential-fallback kernels, which call
/// [`num_threads`] on every dispatch.
fn host_parallelism() -> usize {
    static HOST: AtomicUsize = AtomicUsize::new(0);
    match HOST.load(Ordering::Relaxed) {
        0 => {
            let n = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1);
            HOST.store(n, Ordering::Relaxed);
            n
        }
        n => n,
    }
}

/// Number of chunks dense kernels partition their work into.
///
/// Defaults to the machine's available parallelism; override (e.g. in
/// determinism tests) with [`set_num_threads`]. The override controls the
/// *partitioning* — and hence the bit-exact result of reductions — even
/// when fewer physical workers execute the chunks.
pub fn num_threads() -> usize {
    let o = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if o != 0 {
        return o;
    }
    host_parallelism()
}

/// Overrides the worker-thread count (0 restores the default).
pub fn set_num_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::Relaxed);
}

/// Which executor dense kernels dispatch through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// The persistent worker pool (default).
    Pool,
    /// The pre-pool executor: scoped spawn-per-op for the forward map /
    /// scatter kernels, sequential everywhere else. Kept only as the
    /// benchmark baseline.
    Spawn,
}

static EXEC_MODE: AtomicUsize = AtomicUsize::new(0);

/// Selects the executor ([`ExecMode::Pool`] by default). Benchmarks use
/// this to measure the pool against the legacy spawn-per-op executor.
pub fn set_exec_mode(mode: ExecMode) {
    EXEC_MODE.store(mode as usize, Ordering::Relaxed);
}

/// The currently selected executor.
pub fn exec_mode() -> ExecMode {
    if EXEC_MODE.load(Ordering::Relaxed) == ExecMode::Spawn as usize {
        ExecMode::Spawn
    } else {
        ExecMode::Pool
    }
}

// --- the persistent pool ---------------------------------------------------

/// Lifetime-erased handle to the in-flight job closure. The `'static` is
/// a fiction established by `transmute` in [`run_chunks`]; it is sound
/// because the dispatcher keeps the closure alive until every chunk has
/// completed, so workers never dereference a dangling job.
#[derive(Clone, Copy)]
struct JobPtr(&'static (dyn Fn(usize) + Sync));

struct PoolState {
    job: Option<JobPtr>,
    epoch: u64,
    next_chunk: usize,
    total_chunks: usize,
    completed: usize,
}

struct Pool {
    state: Mutex<PoolState>,
    /// Wakes workers when a new job (epoch) is published.
    work_cv: Condvar,
    /// Wakes the dispatcher when the last chunk of the job completes.
    done_cv: Condvar,
    /// Serializes dispatches (ops are issued one at a time, but tests may
    /// drive several graphs from different threads).
    dispatch_lock: Mutex<()>,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        state: Mutex::new(PoolState {
            job: None,
            epoch: 0,
            next_chunk: 0,
            total_chunks: 0,
            completed: 0,
        }),
        work_cv: Condvar::new(),
        done_cv: Condvar::new(),
        dispatch_lock: Mutex::new(()),
    })
}

/// Lazily spawns the parked worker threads (once per process). The
/// dispatcher itself also executes chunks, so `available_parallelism - 1`
/// workers saturate the machine.
fn ensure_workers() {
    static STARTED: OnceLock<()> = OnceLock::new();
    STARTED.get_or_init(|| {
        let workers = host_parallelism().saturating_sub(1).min(63);
        for w in 0..workers {
            std::thread::Builder::new()
                .name(format!("dgr-pool-{w}"))
                .spawn(|| worker_loop(pool()))
                .expect("spawn pool worker");
        }
    });
}

fn worker_loop(pool: &'static Pool) {
    let mut seen_epoch = 0u64;
    loop {
        // Park until a job with an unseen epoch is published.
        let (job, epoch) = {
            let mut st = pool.state.lock().expect("pool poisoned");
            loop {
                if st.epoch != seen_epoch {
                    if let Some(job) = st.job {
                        break (job, st.epoch);
                    }
                }
                st = pool.work_cv.wait(st).expect("pool poisoned");
            }
        };
        seen_epoch = epoch;
        run_job_chunks(pool, job, epoch);
    }
}

/// Claims and executes chunks of the job published at `epoch` until none
/// remain (or a newer epoch supersedes it).
fn run_job_chunks(pool: &Pool, job: JobPtr, epoch: u64) {
    loop {
        let chunk = {
            let mut st = pool.state.lock().expect("pool poisoned");
            if st.epoch != epoch || st.next_chunk >= st.total_chunks {
                return;
            }
            let c = st.next_chunk;
            st.next_chunk += 1;
            c
        };
        pool_metrics().chunks_claimed.add(1);
        // The dispatcher keeps the closure alive until every claimed
        // chunk reports completion (`completed == total_chunks`).
        (job.0)(chunk);
        let mut st = pool.state.lock().expect("pool poisoned");
        st.completed += 1;
        if st.completed == st.total_chunks {
            pool.done_cv.notify_all();
        }
    }
}

/// Executes `job(chunk)` for every chunk in `0..chunks` on the pool,
/// participating from the calling thread. Returns after all chunks
/// complete. Chunk assignment is work-stealing; result placement must
/// depend only on the chunk index (see the module docs).
pub(crate) fn run_chunks(chunks: usize, job: &(dyn Fn(usize) + Sync)) {
    if chunks == 0 {
        return;
    }
    if chunks == 1 {
        job(0);
        return;
    }
    ensure_workers();
    // `then` with a closure defers the `Instant::now()` syscall to the
    // instrumented path only.
    let dispatch_start = dgr_obs::enabled().then(Instant::now);
    let pool = pool();
    let _guard = pool.dispatch_lock.lock().expect("pool poisoned");
    // SAFETY: erases the job's lifetime. Sound because this function does
    // not return until `completed == total_chunks` and then clears
    // `st.job`, so no worker touches the closure after it dies.
    let job_ptr = JobPtr(unsafe {
        std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(job)
    });
    let epoch = {
        let mut st = pool.state.lock().expect("pool poisoned");
        st.epoch = st.epoch.wrapping_add(1);
        st.job = Some(job_ptr);
        st.next_chunk = 0;
        st.total_chunks = chunks;
        st.completed = 0;
        pool.work_cv.notify_all();
        st.epoch
    };
    if dispatch_start.is_some() {
        dgr_obs::status_queue_depth(chunks as u64);
    }
    run_job_chunks(pool, job_ptr, epoch);
    let mut st = pool.state.lock().expect("pool poisoned");
    while st.completed < st.total_chunks {
        st = pool.done_cv.wait(st).expect("pool poisoned");
    }
    st.job = None;
    drop(st);
    if let Some(start) = dispatch_start {
        let ns = start.elapsed().as_nanos() as u64;
        let m = pool_metrics();
        m.jobs_dispatched.add(1);
        m.busy_ns.add(ns);
        m.dispatch_ns.record(ns);
        dgr_obs::status_queue_depth(0);
    }
}

/// A raw pointer that may cross thread boundaries. Used to hand each
/// chunk a disjoint mutable window of a shared buffer.
pub(crate) struct SendPtr<T>(pub(crate) *mut T);

// Manual impls: the derive would require `T: Copy`, but copying the
// *pointer* never copies the pointee.
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}

// SAFETY: every use partitions the pointee into per-chunk disjoint ranges.
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// The wrapped pointer. Kernels must go through this method rather
    /// than the field: edition-2021 closures capture used fields
    /// individually, and a captured bare `*mut T` strips the wrapper's
    /// `Send`/`Sync`.
    pub(crate) fn get(self) -> *mut T {
        self.0
    }
}

/// Splits `0..num_items` into [`num_threads`] contiguous chunks and runs
/// `f(range)` for each on the pool. Falls back to one sequential
/// `f(0..num_items)` call when `total_elems` is below [`PAR_THRESHOLD`],
/// a single thread is configured, or the legacy spawn executor is
/// selected (whose backward pass was sequential).
///
/// `f` must write only to locations owned by its item range, so results
/// are independent of which worker runs which chunk.
pub(crate) fn par_blocks<F>(num_items: usize, total_elems: usize, f: F)
where
    F: Fn(Range<usize>) + Sync,
{
    let threads = num_threads();
    if num_items == 0 {
        return;
    }
    if total_elems < PAR_THRESHOLD || threads <= 1 || exec_mode() == ExecMode::Spawn {
        pool_metrics().seq_fallbacks.add(1);
        f(0..num_items);
        return;
    }
    let chunk = num_items.div_ceil(threads);
    let chunks = num_items.div_ceil(chunk);
    run_chunks(chunks, &|c| {
        let lo = c * chunk;
        let hi = (lo + chunk).min(num_items);
        f(lo..hi);
    });
}

/// Runs `f(range)` over contiguous subranges of `0..len` — the dispatch
/// skeleton behind the chunked slice kernels in [`crate::kernels`].
///
/// Below [`PAR_THRESHOLD`] elements (or with one thread) the whole range
/// is processed sequentially; in [`ExecMode::Spawn`] a scoped thread is
/// spawned per chunk (the legacy executor the benches baseline against);
/// otherwise chunks run on the worker pool. `f` must write only to
/// locations owned by its range, so placement is independent of which
/// worker executes a chunk (bit-stable across thread counts for
/// elementwise kernels).
/// Splits a physical range over instance-major batched storage with
/// logical per-instance length `n` into per-instance pieces, calling
/// `f(b, logical_range)` for each instance the range touches, in
/// ascending order. Lets one parallel dispatch cover all `B` instances
/// of an op whose per-element math is independent of the split (the
/// kernel still sees one instance at a time).
#[inline]
pub(crate) fn split_batch(
    r: std::ops::Range<usize>,
    n: usize,
    mut f: impl FnMut(usize, std::ops::Range<usize>),
) {
    debug_assert!(n > 0 || r.is_empty());
    let mut i = r.start;
    while i < r.end {
        let b = i / n;
        let end = ((b + 1) * n).min(r.end);
        f(b, i - b * n..end - b * n);
        i = end;
    }
}

pub(crate) fn par_apply<F>(len: usize, f: F)
where
    F: Fn(Range<usize>) + Sync,
{
    let threads = num_threads();
    if len < PAR_THRESHOLD || threads <= 1 {
        pool_metrics().seq_fallbacks.add(1);
        f(0..len);
        return;
    }
    let chunk = len.div_ceil(threads);
    if exec_mode() == ExecMode::Spawn {
        std::thread::scope(|scope| {
            let mut lo = 0;
            while lo < len {
                let hi = (lo + chunk).min(len);
                let f = &f;
                scope.spawn(move || f(lo..hi));
                lo = hi;
            }
        });
        return;
    }
    let chunks = len.div_ceil(chunk);
    run_chunks(chunks, &|c| {
        let lo = c * chunk;
        let hi = (lo + chunk).min(len);
        f(lo..hi);
    });
}

/// Applies `f(global_index, &mut out[i])` over `out` in parallel chunks.
///
/// `f` must be pure per element — the index-to-value mapping cannot depend
/// on other output elements. Bit-reproducible across all thread counts
/// (no reduction is involved).
pub fn par_map_mut<F>(out: &mut [f32], f: F)
where
    F: Fn(usize, &mut f32) + Sync,
{
    let threads = num_threads();
    if out.len() < PAR_THRESHOLD || threads <= 1 {
        pool_metrics().seq_fallbacks.add(1);
        for (i, v) in out.iter_mut().enumerate() {
            f(i, v);
        }
        return;
    }
    if exec_mode() == ExecMode::Spawn {
        return spawn_map_mut(out, &f, threads);
    }
    let len = out.len();
    let chunk = len.div_ceil(threads);
    let chunks = len.div_ceil(chunk);
    let base = SendPtr(out.as_mut_ptr());
    run_chunks(chunks, &move |c| {
        let lo = c * chunk;
        let hi = (lo + chunk).min(len);
        // SAFETY: chunks index disjoint ranges of `out`, which outlives
        // the dispatch.
        let slice = unsafe { std::slice::from_raw_parts_mut(base.get().add(lo), hi - lo) };
        for (i, v) in slice.iter_mut().enumerate() {
            f(lo + i, v);
        }
    });
}

/// Runs `f(i)` for every `i in 0..n` on the pool and collects the results
/// **in index order** — the task fan-out primitive behind the route
/// pipeline's front end (candidate generation, forest build, extraction
/// scans).
///
/// Unlike the dense kernels, items here are heterogeneous tasks (a 2-pin
/// net next to a 9-pin Steiner problem), so the index space is split into
/// roughly four chunks per thread and claimed by work stealing. Every
/// result lands in its own output slot, so — like the pure maps — the
/// returned vector is **bit-identical for any thread count**; no
/// reduction is involved. Falls back to a sequential map below `min_par`
/// items, when one thread is configured, or under the legacy spawn
/// executor.
pub fn par_indexed<T, F>(n: usize, min_par: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = num_threads();
    if n < min_par || threads <= 1 || exec_mode() == ExecMode::Spawn {
        pool_metrics().seq_fallbacks.add(1);
        return (0..n).map(f).collect();
    }
    let chunk = n.div_ceil(threads * 4).max(1);
    let chunks = n.div_ceil(chunk);
    let mut out: Vec<Option<T>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    let base = SendPtr(out.as_mut_ptr());
    run_chunks(chunks, &move |c| {
        let lo = c * chunk;
        let hi = (lo + chunk).min(n);
        for i in lo..hi {
            // SAFETY: chunks cover disjoint index ranges of `out`, which
            // outlives the dispatch; slot i is written exactly once.
            unsafe { *base.get().add(i) = Some(f(i)) };
        }
    });
    out.into_iter()
        .map(|v| v.expect("every chunk completed"))
        .collect()
}

/// The pre-pool executor: a scoped spawn per chunk, per op. Benchmark
/// baseline only.
fn spawn_map_mut<F>(out: &mut [f32], f: &F, threads: usize)
where
    F: Fn(usize, &mut f32) + Sync,
{
    let chunk = out.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for (c, slice) in out.chunks_mut(chunk).enumerate() {
            scope.spawn(move || {
                let base = c * chunk;
                for (i, v) in slice.iter_mut().enumerate() {
                    f(base + i, v);
                }
            });
        }
    });
}

/// Reusable per-chunk partial buffers for scatter-add reductions, kept
/// across dispatches so the hot training loop stops allocating
/// `threads × out.len()` floats every iteration.
static PARTIALS_CACHE: Mutex<Vec<Vec<f32>>> = Mutex::new(Vec::new());

fn take_partials(chunks: usize, len: usize) -> Vec<Vec<f32>> {
    let mut cache = PARTIALS_CACHE.lock().expect("scratch poisoned");
    let mut bufs: Vec<Vec<f32>> = Vec::with_capacity(chunks);
    while bufs.len() < chunks {
        bufs.push(cache.pop().unwrap_or_default());
    }
    drop(cache);
    for b in &mut bufs {
        b.clear();
        b.resize(len, 0.0);
    }
    bufs
}

fn return_partials(bufs: Vec<Vec<f32>>) {
    const LIMIT: usize = 256;
    let mut cache = PARTIALS_CACHE.lock().expect("scratch poisoned");
    for b in bufs {
        if cache.len() < LIMIT {
            cache.push(b);
        }
    }
}

/// Borrows a zeroed `len`-element f32 scratch buffer from the executor's
/// cache (the same pool [`par_scatter_add`] reuses for its reduction
/// partials). Return it with [`return_scratch`] when done so hot loops —
/// the backward pass, the extraction phases — stop paying a heap
/// allocation per iteration.
pub fn take_scratch(len: usize) -> Vec<f32> {
    let mut b = {
        let mut cache = PARTIALS_CACHE.lock().expect("scratch poisoned");
        cache.pop().unwrap_or_default()
    };
    b.clear();
    b.resize(len, 0.0);
    b
}

/// Returns a buffer borrowed via [`take_scratch`] to the executor cache.
pub fn return_scratch(buf: Vec<f32>) {
    return_partials(vec![buf]);
}

/// Parallel scatter-add: `out[idx[i]] += vals[i]` for all `i`.
///
/// Parallelized with per-chunk partial output buffers merged in chunk
/// order, so the result is bit-reproducible for a fixed thread count.
/// Falls back to the sequential loop for small inputs (or when partial
/// buffers would cost more than they save).
///
/// # Panics
///
/// Panics if `idx.len() != vals.len()` or any index is out of range
/// (callers validate indices at graph-construction time).
pub fn par_scatter_add(out: &mut [f32], idx: &[u32], vals: &[f32]) {
    assert_eq!(idx.len(), vals.len(), "scatter operands disagree");
    let threads = num_threads();
    // Partial buffers cost threads × out.len() writes; only profitable for
    // large entry counts relative to the output size.
    if idx.len() < PAR_THRESHOLD || threads <= 1 || out.len() * threads > idx.len() * 4 {
        pool_metrics().seq_fallbacks.add(1);
        crate::kernels::scatter_add(out, idx, vals);
        return;
    }
    if exec_mode() == ExecMode::Spawn {
        return spawn_scatter_add(out, idx, vals, threads);
    }
    let chunk = idx.len().div_ceil(threads);
    let chunks = idx.len().div_ceil(chunk);
    let mut partials = take_partials(chunks, out.len());
    let parts = SendPtr(partials.as_mut_ptr());
    run_chunks(chunks, &move |c| {
        // SAFETY: chunk c exclusively owns partials[c].
        let part: &mut Vec<f32> = unsafe { &mut *parts.get().add(c) };
        let lo = c * chunk;
        let hi = (lo + chunk).min(idx.len());
        crate::kernels::scatter_add(part, &idx[lo..hi], &vals[lo..hi]);
    });
    for part in &partials {
        crate::kernels::axpy(out, part, 1.0);
    }
    return_partials(partials);
}

/// The pre-pool scatter executor (scoped spawns, fresh partial buffers).
/// Benchmark baseline only.
fn spawn_scatter_add(out: &mut [f32], idx: &[u32], vals: &[f32], threads: usize) {
    let chunk = idx.len().div_ceil(threads);
    let mut partials: Vec<Vec<f32>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for c in 0..threads {
            let lo = c * chunk;
            if lo >= idx.len() {
                break;
            }
            let hi = (lo + chunk).min(idx.len());
            let (idx, vals) = (&idx[lo..hi], &vals[lo..hi]);
            let len = out.len();
            handles.push(scope.spawn(move || {
                let mut part = vec![0.0f32; len];
                for (&i, &v) in idx.iter().zip(vals) {
                    part[i as usize] += v;
                }
                part
            }));
        }
        for h in handles {
            partials.push(h.join().expect("scatter worker panicked"));
        }
    });
    for part in partials {
        for (o, p) in out.iter_mut().zip(part) {
            *o += p;
        }
    }
}

/// Parallel `dst[i] += k * src[i]` — the backward kernel of the linear
/// ops. Bit-reproducible across all thread counts.
///
/// # Panics
///
/// Panics if the slices' lengths differ.
pub fn par_axpy(dst: &mut [f32], src: &[f32], k: f32) {
    assert_eq!(dst.len(), src.len(), "axpy operands disagree");
    let base = SendPtr(dst.as_mut_ptr());
    par_apply(src.len(), move |r| {
        // SAFETY: par_apply ranges are disjoint and dst outlives it.
        let d = unsafe { std::slice::from_raw_parts_mut(base.get().add(r.start), r.len()) };
        crate::kernels::axpy(d, &src[r], k);
    });
}

/// Parallel sum with per-chunk partials merged in chunk order
/// (bit-reproducible for a fixed thread count). Per-chunk bodies use the
/// mode-dispatched [`crate::kernels::sum`].
pub fn par_sum(x: &[f32]) -> f32 {
    par_reduce(x.len(), |lo, hi| crate::kernels::sum(&x[lo..hi]))
}

/// Parallel dot product against a constant weight vector, chunk partials
/// merged in chunk order (bit-reproducible for a fixed thread count).
/// Per-chunk bodies use the mode-dispatched [`crate::kernels::dot`].
///
/// # Panics
///
/// Panics if the slices' lengths differ.
pub fn par_dot(x: &[f32], w: &[f32]) -> f32 {
    assert_eq!(x.len(), w.len(), "dot operands disagree");
    par_reduce(x.len(), |lo, hi| {
        crate::kernels::dot(&x[lo..hi], &w[lo..hi])
    })
}

/// Batched [`par_sum`]: lane `b` of `out` receives exactly what
/// `par_sum` would return for that lane alone (identical per-lane chunk
/// boundaries and fold order), but all `batch × chunks` partials go out
/// in a single pool dispatch.
pub fn par_sum_batched(x: &[f32], batch: usize, out: &mut [f32]) {
    assert_eq!(out.len(), batch, "one output per lane");
    if batch == 1 {
        out[0] = par_sum(x);
        return;
    }
    let n = x.len() / batch;
    par_reduce_batched(n, batch, out, |b, lo, hi| {
        crate::kernels::sum(&x[b * n + lo..b * n + hi])
    });
}

/// Batched [`par_dot`] against a shared constant weight vector; same
/// per-lane bit-identity contract as [`par_sum_batched`].
///
/// # Panics
///
/// Panics if `x.len() != w.len() * batch`.
pub fn par_dot_batched(x: &[f32], w: &[f32], batch: usize, out: &mut [f32]) {
    assert_eq!(out.len(), batch, "one output per lane");
    assert_eq!(x.len(), w.len() * batch, "dot operands disagree");
    if batch == 1 {
        out[0] = par_dot(x, w);
        return;
    }
    let n = w.len();
    par_reduce_batched(n, batch, out, |b, lo, hi| {
        crate::kernels::dot(&x[b * n + lo..b * n + hi], &w[lo..hi])
    });
}

/// Batched reduction skeleton behind the `*_batched` wrappers. Each
/// lane's chunk layout replicates what [`par_reduce`] would use for a
/// single lane of logical length `n`, so per-lane results are
/// bit-identical to `batch` separate calls.
fn par_reduce_batched<F>(n: usize, batch: usize, out: &mut [f32], partial: F)
where
    F: Fn(usize, usize, usize) -> f32 + Sync,
{
    let threads = num_threads();
    let pooled = threads > 1 && exec_mode() == ExecMode::Pool;
    let single_chunk = n < PAR_THRESHOLD || !pooled;
    if single_chunk {
        if pooled && n * batch >= PAR_THRESHOLD {
            // Small lanes but a big batch: one dispatch, one lane per task.
            let outp = SendPtr(out.as_mut_ptr());
            run_chunks(batch, &|b| {
                // SAFETY: each task exclusively owns out[b].
                unsafe { *outp.get().add(b) = partial(b, 0, n) };
            });
        } else {
            pool_metrics().seq_fallbacks.add(1);
            for (b, o) in out.iter_mut().enumerate() {
                *o = partial(b, 0, n);
            }
        }
        return;
    }
    let chunk = n.div_ceil(threads);
    let chunks = n.div_ceil(chunk);
    let mut partials = vec![0.0f32; batch * chunks];
    let parts = SendPtr(partials.as_mut_ptr());
    run_chunks(batch * chunks, &|t| {
        let (b, c) = (t / chunks, t % chunks);
        let lo = c * chunk;
        let hi = (lo + chunk).min(n);
        // SAFETY: task t exclusively owns partials[t].
        unsafe { *parts.get().add(t) = partial(b, lo, hi) };
    });
    for (b, o) in out.iter_mut().enumerate() {
        *o = partials[b * chunks..(b + 1) * chunks].iter().sum();
    }
}

/// Batched [`par_scatter_add`] over instance-major lanes sharing one
/// index table: lane `b` of `out` ends up exactly as if
/// `par_scatter_add` had run on that lane alone (same per-lane chunk
/// layout and chunk-order merge), with all lanes' chunk work — and the
/// per-lane merges, which write disjoint lanes — batched into single
/// pool dispatches.
pub fn par_scatter_add_batched(out: &mut [f32], idx: &[u32], vals: &[f32], batch: usize) {
    if batch == 1 {
        return par_scatter_add(out, idx, vals);
    }
    let n_out = out.len() / batch;
    let n = idx.len();
    assert_eq!(vals.len(), n * batch, "scatter operands disagree");
    let threads = num_threads();
    if threads <= 1 || exec_mode() == ExecMode::Spawn {
        for b in 0..batch {
            par_scatter_add(
                &mut out[b * n_out..(b + 1) * n_out],
                idx,
                &vals[b * n..(b + 1) * n],
            );
        }
        return;
    }
    if n < PAR_THRESHOLD || n_out * threads > n * 4 {
        // Per-lane sequential scatter; lanes are disjoint, so they can
        // still fan out one-per-task in a single dispatch.
        let outp = SendPtr(out.as_mut_ptr());
        run_chunks(batch, &|b| {
            // SAFETY: each task exclusively owns lane b.
            let o = unsafe { std::slice::from_raw_parts_mut(outp.get().add(b * n_out), n_out) };
            crate::kernels::scatter_add(o, idx, &vals[b * n..(b + 1) * n]);
        });
        return;
    }
    let chunk = n.div_ceil(threads);
    let chunks = n.div_ceil(chunk);
    let mut partials = take_partials(batch * chunks, n_out);
    let parts = SendPtr(partials.as_mut_ptr());
    run_chunks(batch * chunks, &move |t| {
        let (b, c) = (t / chunks, t % chunks);
        // SAFETY: task t exclusively owns partials[t].
        let part: &mut Vec<f32> = unsafe { &mut *parts.get().add(t) };
        let lo = c * chunk;
        let hi = (lo + chunk).min(n);
        crate::kernels::scatter_add(part, &idx[lo..hi], &vals[b * n + lo..b * n + hi]);
    });
    let outp = SendPtr(out.as_mut_ptr());
    let partials_ref = &partials;
    run_chunks(batch, &move |b| {
        // SAFETY: each task exclusively owns lane b.
        let o = unsafe { std::slice::from_raw_parts_mut(outp.get().add(b * n_out), n_out) };
        for part in &partials_ref[b * chunks..(b + 1) * chunks] {
            crate::kernels::axpy(o, part, 1.0);
        }
    });
    return_partials(partials);
}

/// Chunked reduction skeleton: `partial(lo, hi)` per chunk, partials
/// summed in chunk order.
fn par_reduce<F>(len: usize, partial: F) -> f32
where
    F: Fn(usize, usize) -> f32 + Sync,
{
    let threads = num_threads();
    if len < PAR_THRESHOLD || threads <= 1 || exec_mode() == ExecMode::Spawn {
        pool_metrics().seq_fallbacks.add(1);
        return partial(0, len);
    }
    let chunk = len.div_ceil(threads);
    let chunks = len.div_ceil(chunk);
    let mut partials = vec![0.0f32; chunks];
    let parts = SendPtr(partials.as_mut_ptr());
    run_chunks(chunks, &move |c| {
        let lo = c * chunk;
        let hi = (lo + chunk).min(len);
        // SAFETY: chunk c exclusively owns partials[c].
        unsafe { *parts.get().add(c) = partial(lo, hi) };
    });
    partials.iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_matches_sequential() {
        let mut a = vec![0.0f32; 100_000];
        let mut b = vec![0.0f32; 100_000];
        par_map_mut(&mut a, |i, v| *v = (i as f32).sin());
        for (i, v) in b.iter_mut().enumerate() {
            *v = (i as f32).sin();
        }
        assert_eq!(a, b);
    }

    #[test]
    fn scatter_add_matches_sequential() {
        let n = 200_000;
        let idx: Vec<u32> = (0..n).map(|i| ((i * 7919) % 1000) as u32).collect();
        let vals: Vec<f32> = (0..n).map(|i| (i % 13) as f32 * 0.5).collect();
        set_num_threads(3); // force the partial-buffer path
        let mut par = vec![0.0f32; 1000];
        par_scatter_add(&mut par, &idx, &vals);
        set_num_threads(0);
        let mut seq = vec![0.0f32; 1000];
        for (&i, &v) in idx.iter().zip(&vals) {
            seq[i as usize] += v;
        }
        // summation order differs → equality up to float associativity
        for (p, s) in par.iter().zip(&seq) {
            assert!((p - s).abs() <= 1e-3 * s.abs().max(1.0), "{p} vs {s}");
        }
    }

    #[test]
    fn scatter_add_empty_is_noop() {
        let mut out = vec![1.0f32; 4];
        par_scatter_add(&mut out, &[], &[]);
        assert_eq!(out, vec![1.0; 4]);
    }

    #[test]
    fn thread_override_roundtrip() {
        set_num_threads(2);
        assert_eq!(num_threads(), 2);
        set_num_threads(0);
        assert!(num_threads() >= 1);
    }

    /// Forces the multi-threaded code path (the host may have one core):
    /// repeated runs at a fixed thread count are bit-identical, and
    /// different counts agree up to float associativity. Pure maps carry
    /// no reduction, so they are bit-identical across counts too.
    #[test]
    fn determinism_across_runs_and_thread_counts() {
        let n = 300_000;
        let idx: Vec<u32> = (0..n).map(|i| ((i * 31 + 7) % 5000) as u32).collect();
        let vals: Vec<f32> = (0..n).map(|i| ((i % 97) as f32) * 0.37).collect();
        let run = |threads: usize| {
            set_num_threads(threads);
            let mut out = vec![0.0f32; 5000];
            par_scatter_add(&mut out, &idx, &vals);
            let mut mapped = vec![0.0f32; n];
            par_map_mut(&mut mapped, |i, v| *v = vals[i] * 2.0 + 1.0);
            set_num_threads(0);
            (out, mapped)
        };
        let (scatter4a, map4a) = run(4);
        let (scatter4b, map4b) = run(4);
        assert_eq!(scatter4a, scatter4b, "same thread count must be bit-stable");
        assert_eq!(map4a, map4b);
        let (scatter1, map1) = run(1);
        assert_eq!(map1, map4a, "maps have no reduction: bit-identical");
        for (a, b) in scatter1.iter().zip(&scatter4a) {
            assert!((a - b).abs() <= 0.01 * a.abs().max(1.0), "{a} vs {b}");
        }
    }

    #[test]
    fn pool_survives_many_small_dispatches() {
        // thousands of dispatches through the persistent pool: the
        // spawn-per-op executor this replaces would create ~8000 threads
        // here; the pool must not leak or deadlock.
        set_num_threads(4);
        let mut out = vec![0.0f32; PAR_THRESHOLD + 1];
        for round in 0..2000 {
            let k = round as f32;
            par_map_mut(&mut out, |i, v| *v = k + i as f32);
            assert_eq!(out[0], k);
            assert_eq!(out[PAR_THRESHOLD], k + PAR_THRESHOLD as f32);
        }
        set_num_threads(0);
    }

    #[test]
    fn reductions_are_chunk_stable() {
        let x: Vec<f32> = (0..200_000).map(|i| ((i % 31) as f32) * 0.125).collect();
        let w: Vec<f32> = (0..200_000).map(|i| ((i % 17) as f32) * 0.25).collect();
        set_num_threads(4);
        let s4a = par_sum(&x);
        let s4b = par_sum(&x);
        let d4a = par_dot(&x, &w);
        let d4b = par_dot(&x, &w);
        set_num_threads(1);
        let s1 = par_sum(&x);
        let d1 = par_dot(&x, &w);
        set_num_threads(0);
        assert_eq!(s4a, s4b, "fixed thread count must be bit-stable");
        assert_eq!(d4a, d4b);
        assert!((s4a - s1).abs() <= 1e-3 * s1.abs().max(1.0));
        assert!((d4a - d1).abs() <= 1e-3 * d1.abs().max(1.0));
    }

    #[test]
    fn axpy_accumulates() {
        let src: Vec<f32> = (0..40_000).map(|i| i as f32).collect();
        let mut dst = vec![1.0f32; 40_000];
        set_num_threads(3);
        par_axpy(&mut dst, &src, 0.5);
        set_num_threads(0);
        for (i, d) in dst.iter().enumerate() {
            assert_eq!(*d, 1.0 + 0.5 * i as f32);
        }
    }

    #[test]
    fn par_indexed_is_index_ordered_and_thread_count_invariant() {
        let n = 10_000;
        let expect: Vec<Vec<u64>> = (0..n).map(|i| vec![i as u64, (i * i) as u64]).collect();
        for threads in [1, 2, 8] {
            set_num_threads(threads);
            let got = par_indexed(n, 1, |i| vec![i as u64, (i * i) as u64]);
            assert_eq!(got, expect, "threads={threads}");
        }
        set_num_threads(0);
    }

    #[test]
    fn par_indexed_respects_min_par_and_empty() {
        assert!(par_indexed(0, 1, |i| i).is_empty());
        assert_eq!(par_indexed(5, 100, |i| i * 3), vec![0, 3, 6, 9, 12]);
    }

    #[test]
    fn spawn_mode_matches_pool_mode() {
        let n = 100_000;
        let idx: Vec<u32> = (0..n).map(|i| ((i * 13) % 777) as u32).collect();
        let vals: Vec<f32> = (0..n).map(|i| (i % 9) as f32).collect();
        set_num_threads(4);
        let mut pool_out = vec![0.0f32; 777];
        par_scatter_add(&mut pool_out, &idx, &vals);
        set_exec_mode(ExecMode::Spawn);
        let mut spawn_out = vec![0.0f32; 777];
        par_scatter_add(&mut spawn_out, &idx, &vals);
        set_exec_mode(ExecMode::Pool);
        set_num_threads(0);
        // identical chunking and merge order → bit-identical results
        assert_eq!(pool_out, spawn_out);
    }
}
