//! Multi-threaded CPU kernels — the GPU-substitution layer.
//!
//! The paper runs its tensor ops as CUDA kernels. Here, each dense op
//! shards its output across scoped worker threads (crossbeam). Reductions
//! into shared targets (scatter-add) use per-thread partial buffers merged
//! in thread order, so results are **bit-reproducible for a fixed thread
//! count** — no atomics, no scheduling-dependent float ordering (CUDA
//! atomics give neither). Across *different* thread counts the summation
//! order changes, so results agree only up to float associativity.
//!
//! Below [`PAR_THRESHOLD`] elements the sequential path is used; thread
//! spawn overhead dominates for small tensors.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Minimum number of elements before an op fans out to worker threads.
pub const PAR_THRESHOLD: usize = 1 << 15;

static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Number of worker threads dense kernels will use.
///
/// Defaults to the machine's available parallelism; override (e.g. in
/// determinism tests) with [`set_num_threads`].
pub fn num_threads() -> usize {
    let o = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if o != 0 {
        return o;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Overrides the worker-thread count (0 restores the default).
pub fn set_num_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::Relaxed);
}

/// Applies `f(global_index, &mut out[i])` over `out` in parallel chunks.
///
/// `f` must be pure per element — the index-to-value mapping cannot depend
/// on other output elements.
pub fn par_map_mut<F>(out: &mut [f32], f: F)
where
    F: Fn(usize, &mut f32) + Sync,
{
    let threads = num_threads();
    if out.len() < PAR_THRESHOLD || threads <= 1 {
        for (i, v) in out.iter_mut().enumerate() {
            f(i, v);
        }
        return;
    }
    let chunk = out.len().div_ceil(threads);
    crossbeam::scope(|scope| {
        for (c, slice) in out.chunks_mut(chunk).enumerate() {
            let f = &f;
            scope.spawn(move |_| {
                let base = c * chunk;
                for (i, v) in slice.iter_mut().enumerate() {
                    f(base + i, v);
                }
            });
        }
    })
    .expect("worker thread panicked");
}

/// Parallel scatter-add: `out[idx[i]] += vals[i]` for all `i`.
///
/// Parallelized with per-thread partial output buffers merged in thread
/// order, so the result is deterministic. Falls back to the sequential
/// loop for small inputs (or when partial buffers would cost more than
/// they save).
///
/// # Panics
///
/// Panics if `idx.len() != vals.len()` or any index is out of range
/// (callers validate indices at graph-construction time).
pub fn par_scatter_add(out: &mut [f32], idx: &[u32], vals: &[f32]) {
    assert_eq!(idx.len(), vals.len(), "scatter operands disagree");
    let threads = num_threads();
    // Partial buffers cost threads × out.len() writes; only profitable for
    // large entry counts relative to the output size.
    if idx.len() < PAR_THRESHOLD || threads <= 1 || out.len() * threads > idx.len() * 4 {
        for (&i, &v) in idx.iter().zip(vals) {
            out[i as usize] += v;
        }
        return;
    }
    let chunk = idx.len().div_ceil(threads);
    let mut partials: Vec<Vec<f32>> = Vec::with_capacity(threads);
    crossbeam::scope(|scope| {
        let mut handles = Vec::new();
        for c in 0..threads {
            let lo = c * chunk;
            if lo >= idx.len() {
                break;
            }
            let hi = (lo + chunk).min(idx.len());
            let (idx, vals) = (&idx[lo..hi], &vals[lo..hi]);
            let len = out.len();
            handles.push(scope.spawn(move |_| {
                let mut part = vec![0.0f32; len];
                for (&i, &v) in idx.iter().zip(vals) {
                    part[i as usize] += v;
                }
                part
            }));
        }
        for h in handles {
            partials.push(h.join().expect("scatter worker panicked"));
        }
    })
    .expect("worker thread panicked");
    for part in partials {
        for (o, p) in out.iter_mut().zip(part) {
            *o += p;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_matches_sequential() {
        let mut a = vec![0.0f32; 100_000];
        let mut b = vec![0.0f32; 100_000];
        par_map_mut(&mut a, |i, v| *v = (i as f32).sin());
        for (i, v) in b.iter_mut().enumerate() {
            *v = (i as f32).sin();
        }
        assert_eq!(a, b);
    }

    #[test]
    fn scatter_add_matches_sequential() {
        let n = 200_000;
        let idx: Vec<u32> = (0..n).map(|i| ((i * 7919) % 1000) as u32).collect();
        let vals: Vec<f32> = (0..n).map(|i| (i % 13) as f32 * 0.5).collect();
        set_num_threads(3); // force the partial-buffer path
        let mut par = vec![0.0f32; 1000];
        par_scatter_add(&mut par, &idx, &vals);
        set_num_threads(0);
        let mut seq = vec![0.0f32; 1000];
        for (&i, &v) in idx.iter().zip(&vals) {
            seq[i as usize] += v;
        }
        // summation order differs → equality up to float associativity
        for (p, s) in par.iter().zip(&seq) {
            assert!((p - s).abs() <= 1e-3 * s.abs().max(1.0), "{p} vs {s}");
        }
    }

    #[test]
    fn scatter_add_empty_is_noop() {
        let mut out = vec![1.0f32; 4];
        par_scatter_add(&mut out, &[], &[]);
        assert_eq!(out, vec![1.0; 4]);
    }

    #[test]
    fn thread_override_roundtrip() {
        set_num_threads(2);
        assert_eq!(num_threads(), 2);
        set_num_threads(0);
        assert!(num_threads() >= 1);
    }

    /// Forces the multi-threaded code path (the host may have one core):
    /// repeated runs at a fixed thread count are bit-identical, and
    /// different counts agree up to float associativity. Pure maps carry
    /// no reduction, so they are bit-identical across counts too.
    #[test]
    fn determinism_across_runs_and_thread_counts() {
        let n = 300_000;
        let idx: Vec<u32> = (0..n).map(|i| ((i * 31 + 7) % 5000) as u32).collect();
        let vals: Vec<f32> = (0..n).map(|i| ((i % 97) as f32) * 0.37).collect();
        let run = |threads: usize| {
            set_num_threads(threads);
            let mut out = vec![0.0f32; 5000];
            par_scatter_add(&mut out, &idx, &vals);
            let mut mapped = vec![0.0f32; n];
            par_map_mut(&mut mapped, |i, v| *v = vals[i] * 2.0 + 1.0);
            set_num_threads(0);
            (out, mapped)
        };
        let (scatter4a, map4a) = run(4);
        let (scatter4b, map4b) = run(4);
        assert_eq!(scatter4a, scatter4b, "same thread count must be bit-stable");
        assert_eq!(map4a, map4b);
        let (scatter1, map1) = run(1);
        assert_eq!(map1, map4a, "maps have no reduction: bit-identical");
        for (a, b) in scatter1.iter().zip(&scatter4a) {
            assert!((a - b).abs() <= 0.01 * a.abs().max(1.0), "{a} vs {b}");
        }
    }
}
