//! Elementwise activation functions — the overflow-cost family of Fig. 6.

/// Non-linearity applied to per-edge `demand − capacity` in the overflow
/// cost (Eq. 6/9). The paper evaluates exactly this set and finds sigmoid
/// best; ReLU is used for the ILP comparison because ILP can only model
/// piecewise-linear objectives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Activation {
    /// `max(0, x)` — the exact overflow mass; zero gradient below capacity.
    Relu,
    /// `1 / (1 + e^{-x})` — smooth, saturating; the paper's default.
    Sigmoid,
    /// `max(αx, x)` with `α = 0.01` — keeps a small gradient below capacity.
    LeakyRelu,
    /// `e^x` (input clamped to ≤ 20 to avoid overflow) — aggressive
    /// penalty growth.
    Exp,
    /// `max(0, x) + min(0, α(e^{x/α} − 1))` with `α = 1` — smooth ReLU.
    Celu,
}

const LEAKY_ALPHA: f32 = 0.01;
const EXP_CLAMP: f32 = 20.0;

impl Activation {
    /// Evaluates the activation at `x`.
    #[inline]
    pub fn eval(self, x: f32) -> f32 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::LeakyRelu => {
                if x > 0.0 {
                    x
                } else {
                    LEAKY_ALPHA * x
                }
            }
            Activation::Exp => x.min(EXP_CLAMP).exp(),
            Activation::Celu => x.max(0.0) + (x.min(0.0).exp() - 1.0).min(0.0),
        }
    }

    /// Evaluates the derivative at `x`.
    #[inline]
    pub fn grad(self, x: f32) -> f32 {
        match self {
            Activation::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Sigmoid => {
                let s = 1.0 / (1.0 + (-x).exp());
                s * (1.0 - s)
            }
            Activation::LeakyRelu => {
                if x > 0.0 {
                    1.0
                } else {
                    LEAKY_ALPHA
                }
            }
            Activation::Exp => x.min(EXP_CLAMP).exp(),
            Activation::Celu => {
                if x >= 0.0 {
                    1.0
                } else {
                    x.exp()
                }
            }
        }
    }

    /// All variants, in the order Fig. 6 lists them.
    pub const ALL: [Activation; 5] = [
        Activation::Relu,
        Activation::Sigmoid,
        Activation::LeakyRelu,
        Activation::Exp,
        Activation::Celu,
    ];

    /// Short lowercase name used in reports ("relu", "sigmoid", …).
    pub fn name(self) -> &'static str {
        match self {
            Activation::Relu => "relu",
            Activation::Sigmoid => "sigmoid",
            Activation::LeakyRelu => "leakyrelu",
            Activation::Exp => "exp",
            Activation::Celu => "celu",
        }
    }
}

impl std::fmt::Display for Activation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Activation {
    type Err = ParseActivationError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "relu" => Ok(Activation::Relu),
            "sigmoid" => Ok(Activation::Sigmoid),
            "leakyrelu" | "leaky_relu" => Ok(Activation::LeakyRelu),
            "exp" => Ok(Activation::Exp),
            "celu" => Ok(Activation::Celu),
            _ => Err(ParseActivationError(s.to_owned())),
        }
    }
}

/// Error returned when parsing an unknown activation name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseActivationError(String);

impl std::fmt::Display for ParseActivationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown activation function `{}`", self.0)
    }
}

impl std::error::Error for ParseActivationError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn numeric_grad(a: Activation, x: f32) -> f32 {
        let h = 1e-3;
        (a.eval(x + h) - a.eval(x - h)) / (2.0 * h)
    }

    #[test]
    fn relu_values() {
        assert_eq!(Activation::Relu.eval(2.5), 2.5);
        assert_eq!(Activation::Relu.eval(-1.0), 0.0);
        assert_eq!(Activation::Relu.grad(3.0), 1.0);
        assert_eq!(Activation::Relu.grad(-3.0), 0.0);
    }

    #[test]
    fn sigmoid_range_and_symmetry() {
        let s = Activation::Sigmoid;
        assert!((s.eval(0.0) - 0.5).abs() < 1e-6);
        assert!(s.eval(10.0) > 0.999);
        assert!(s.eval(-10.0) < 0.001);
        assert!((s.eval(2.0) + s.eval(-2.0) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn exp_is_clamped() {
        assert!(Activation::Exp.eval(1000.0).is_finite());
        assert!(Activation::Exp.grad(1000.0).is_finite());
    }

    #[test]
    fn celu_is_continuous_at_zero() {
        let c = Activation::Celu;
        assert!((c.eval(1e-6) - c.eval(-1e-6)).abs() < 1e-4);
        assert!((c.eval(-30.0) + 1.0).abs() < 1e-4); // asymptote −1
    }

    #[test]
    fn analytic_gradients_match_numeric() {
        for a in Activation::ALL {
            for &x in &[-2.0f32, -0.5, 0.3, 1.7, 4.0] {
                let got = a.grad(x);
                let want = numeric_grad(a, x);
                assert!(
                    (got - want).abs() < 1e-2,
                    "{a} grad mismatch at {x}: {got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn parse_roundtrip() {
        for a in Activation::ALL {
            let parsed: Activation = a.name().parse().unwrap();
            assert_eq!(parsed, a);
        }
        assert!("swish".parse::<Activation>().is_err());
    }
}
