//! Chunked (8-lane) f32 kernels with scalar fallbacks — the SIMD layer.
//!
//! The DGR paper runs its tensor ops as wide CUDA kernels; this module is
//! the CPU analogue: every hot loop is written as an explicit 8-lane
//! chunked pass (`chunks_exact(8)` bodies LLVM auto-vectorizes to SSE/AVX
//! on stable Rust — no nightly features, no intrinsics) with a scalar
//! tail. Reductions keep **8 independent lane accumulators** that are
//! folded in a fixed pairwise order, so results are deterministic but
//! differ from the sequential sum in the last ULP whenever more than one
//! chunk participates.
//!
//! # Kernel modes
//!
//! [`kernel_mode`] selects between the chunked kernels and the original
//! scalar reference loops at runtime (env `DGR_KERNELS=scalar`, or
//! [`set_kernel_mode`] from tests/benches). CI runs a matrix leg with the
//! scalar path forced on so the reference implementation stays green.
//!
//! Which kernels change numerics when chunked:
//!
//! * **Pure elementwise passes** (axpy, gather, fused activation maps,
//!   fused multiply backward) are bit-identical in both modes — chunking
//!   only reorders independent element computations.
//! * **Reductions** ([`sum`], [`dot`], the softmax normalizer, the
//!   softmax-backward dot) reassociate the float sum: chunked and scalar
//!   agree only up to ULP-scale error. [`max`] is associative and stays
//!   bit-identical for finite inputs.
//!
//! Committed golden files are generated under the default chunked mode;
//! byte-exact golden comparisons are skipped when the scalar mode is
//! forced (cross-thread-count invariance is still asserted).

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::activation::Activation;

/// Which kernel implementations the tape executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelMode {
    /// 8-lane chunked kernels (default).
    Chunked,
    /// The original scalar reference loops (CI fallback leg).
    Scalar,
}

/// 0 = unset, 1 = chunked, 2 = scalar.
static MODE: AtomicUsize = AtomicUsize::new(0);

/// The active [`KernelMode`]. Resolved once from `DGR_KERNELS`
/// (`scalar` selects the reference loops; anything else is chunked) and
/// cached; [`set_kernel_mode`] overrides it at any time.
pub fn kernel_mode() -> KernelMode {
    match MODE.load(Ordering::Relaxed) {
        1 => KernelMode::Chunked,
        2 => KernelMode::Scalar,
        _ => {
            let mode = match std::env::var("DGR_KERNELS") {
                Ok(s) if s.eq_ignore_ascii_case("scalar") => KernelMode::Scalar,
                _ => KernelMode::Chunked,
            };
            set_kernel_mode(mode);
            mode
        }
    }
}

/// Forces a [`KernelMode`], overriding the `DGR_KERNELS` environment
/// variable (used by the equivalence proptests and `bench_kernels`).
pub fn set_kernel_mode(mode: KernelMode) {
    let v = match mode {
        KernelMode::Chunked => 1,
        KernelMode::Scalar => 2,
    };
    MODE.store(v, Ordering::Relaxed);
}

const LANES: usize = 8;

// --- reductions ------------------------------------------------------------

/// `Σ x[i]`, mode-dispatched.
#[inline]
pub fn sum(x: &[f32]) -> f32 {
    match kernel_mode() {
        KernelMode::Chunked => sum_chunked(x),
        KernelMode::Scalar => sum_scalar(x),
    }
}

/// Sequential reference sum.
#[inline]
pub fn sum_scalar(x: &[f32]) -> f32 {
    x.iter().sum()
}

/// Lane-striped sum: 8 accumulators folded pairwise, scalar tail.
#[inline]
pub fn sum_chunked(x: &[f32]) -> f32 {
    let mut acc = [0.0f32; LANES];
    let mut it = x.chunks_exact(LANES);
    for c in &mut it {
        for (a, &v) in acc.iter_mut().zip(c) {
            *a += v;
        }
    }
    let mut s = fold_lanes(&acc);
    for &v in it.remainder() {
        s += v;
    }
    s
}

/// `Σ x[i]·w[i]`, mode-dispatched.
///
/// # Panics
///
/// Panics if the slices' lengths differ.
#[inline]
pub fn dot(x: &[f32], w: &[f32]) -> f32 {
    assert_eq!(x.len(), w.len(), "dot operands disagree");
    match kernel_mode() {
        KernelMode::Chunked => dot_chunked(x, w),
        KernelMode::Scalar => dot_scalar(x, w),
    }
}

/// Sequential reference dot product.
#[inline]
pub fn dot_scalar(x: &[f32], w: &[f32]) -> f32 {
    x.iter().zip(w).map(|(a, b)| a * b).sum()
}

/// Lane-striped dot product (8 accumulators, pairwise fold, scalar tail).
#[inline]
pub fn dot_chunked(x: &[f32], w: &[f32]) -> f32 {
    let mut acc = [0.0f32; LANES];
    let mut xs = x.chunks_exact(LANES);
    let mut ws = w.chunks_exact(LANES);
    for (cx, cw) in (&mut xs).zip(&mut ws) {
        for j in 0..LANES {
            acc[j] += cx[j] * cw[j];
        }
    }
    let mut s = fold_lanes(&acc);
    for (&a, &b) in xs.remainder().iter().zip(ws.remainder()) {
        s += a * b;
    }
    s
}

/// Maximum element (`-inf` for empty input). Max is associative, so the
/// chunked pass is bit-identical to the sequential fold for finite
/// inputs; no scalar twin is needed.
#[inline]
pub fn max(x: &[f32]) -> f32 {
    let mut acc = [f32::NEG_INFINITY; LANES];
    let mut it = x.chunks_exact(LANES);
    for c in &mut it {
        for (a, &v) in acc.iter_mut().zip(c) {
            *a = a.max(v);
        }
    }
    let mut m = acc.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    for &v in it.remainder() {
        m = m.max(v);
    }
    m
}

/// Fixed pairwise fold of the 8 lane accumulators.
#[inline(always)]
fn fold_lanes(acc: &[f32; LANES]) -> f32 {
    ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7]))
}

// --- softmax ---------------------------------------------------------------

/// Numerically-stable softmax of `x` into `out` (same length),
/// mode-dispatched. The chunked variant lane-stripes the exp-sum; the
/// max pass is associative and shared.
pub fn softmax_into(x: &[f32], out: &mut [f32]) {
    if x.is_empty() {
        return;
    }
    match kernel_mode() {
        KernelMode::Chunked => softmax_into_chunked(x, out),
        KernelMode::Scalar => softmax_into_scalar(x, out),
    }
}

/// The original sequential softmax kernel.
pub fn softmax_into_scalar(x: &[f32], out: &mut [f32]) {
    if x.is_empty() {
        return;
    }
    let max = x.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for (o, &v) in out.iter_mut().zip(x) {
        let e = (v - max).exp();
        *o = e;
        sum += e;
    }
    let inv = 1.0 / sum;
    for o in out.iter_mut() {
        *o *= inv;
    }
}

/// Chunked softmax: associative max, lane-striped exp accumulation, and a
/// chunked rescale pass.
pub fn softmax_into_chunked(x: &[f32], out: &mut [f32]) {
    if x.is_empty() {
        return;
    }
    let m = max(x);
    let mut acc = [0.0f32; LANES];
    let mut xs = x.chunks_exact(LANES);
    let mut os = out.chunks_exact_mut(LANES);
    for (cx, co) in (&mut xs).zip(&mut os) {
        for j in 0..LANES {
            let e = (cx[j] - m).exp();
            co[j] = e;
            acc[j] += e;
        }
    }
    let mut sum = fold_lanes(&acc);
    for (&v, o) in xs.remainder().iter().zip(os.into_remainder()) {
        let e = (v - m).exp();
        *o = e;
        sum += e;
    }
    let inv = 1.0 / sum;
    for o in out.iter_mut() {
        *o *= inv;
    }
}

/// Fused segmented-softmax backward for one segment:
/// `gx[j] += p[j]·(gout[j] − Σ_k gout[k]·p[k])` in two passes — one
/// mode-dispatched dot, one elementwise fused update (bit-identical
/// across modes given the same dot).
pub fn seg_softmax_bwd(p: &[f32], gout: &[f32], gx: &mut [f32]) {
    let d = dot(gout, p);
    for ((g, &pv), &go) in gx.iter_mut().zip(p).zip(gout) {
        *g += pv * (go - d);
    }
}

// --- elementwise passes ----------------------------------------------------
//
// These are bit-identical in both modes (no reduction); the explicit
// slice-iterator bodies exist so LLVM vectorizes them without bounds
// checks. They are written once and used by both mode paths.

/// `out[i] = a[i] + b[i]`.
pub fn add2(out: &mut [f32], a: &[f32], b: &[f32]) {
    for ((o, &u), &v) in out.iter_mut().zip(a).zip(b) {
        *o = u + v;
    }
}

/// `out[i] = a[i] · b[i]`.
pub fn mul2(out: &mut [f32], a: &[f32], b: &[f32]) {
    for ((o, &u), &v) in out.iter_mut().zip(a).zip(b) {
        *o = u * v;
    }
}

/// `out[i] = k · x[i]`.
pub fn scale_into(out: &mut [f32], x: &[f32], k: f32) {
    for (o, &v) in out.iter_mut().zip(x) {
        *o = k * v;
    }
}

/// `dst[i] += g` — the SumAll backward broadcast.
pub fn add_scalar(dst: &mut [f32], g: f32) {
    for d in dst.iter_mut() {
        *d += g;
    }
}

/// `dst[i] += k·src[i]`.
///
/// # Panics
///
/// Panics if the slices' lengths differ.
#[inline]
pub fn axpy(dst: &mut [f32], src: &[f32], k: f32) {
    assert_eq!(dst.len(), src.len(), "axpy operands disagree");
    for (d, &s) in dst.iter_mut().zip(src) {
        *d += k * s;
    }
}

/// Fused Add backward, one read of `gout` feeding both operands:
/// `ga[i] += gout[i]` and `gb[i] += gout[i]`.
pub fn add_bwd(ga: &mut [f32], gb: &mut [f32], gout: &[f32]) {
    for ((a, b), &g) in ga.iter_mut().zip(gb.iter_mut()).zip(gout) {
        *a += g;
        *b += g;
    }
}

/// Fused multiply backward, both operands in one read of `gout`:
/// `ga[i] += gout[i]·xb[i]` and `gb[i] += gout[i]·xa[i]`.
///
/// # Panics
///
/// Panics if any slice length differs.
pub fn mul_bwd(ga: &mut [f32], gb: &mut [f32], gout: &[f32], xa: &[f32], xb: &[f32]) {
    let n = gout.len();
    assert!(
        ga.len() == n && gb.len() == n && xa.len() == n && xb.len() == n,
        "mul_bwd operands disagree"
    );
    for i in 0..n {
        let g = gout[i];
        ga[i] += g * xb[i];
        gb[i] += g * xa[i];
    }
}

/// Fused multiply backward for `x·x`: `ga[i] += 2·gout[i]·xa[i]`.
pub fn mul_bwd_same(ga: &mut [f32], gout: &[f32], xa: &[f32]) {
    for ((g, &go), &x) in ga.iter_mut().zip(gout).zip(xa) {
        *g += 2.0 * go * x;
    }
}

/// `gx[i] += gout[i]·c[i]` — the MulConst backward / generic three-slice
/// fused multiply-accumulate.
pub fn fma_accum(gx: &mut [f32], gout: &[f32], c: &[f32]) {
    for ((g, &go), &cv) in gx.iter_mut().zip(gout).zip(c) {
        *g += go * cv;
    }
}

/// `out[i] = x[idx[i]]` — the gather forward.
pub fn gather_fwd(out: &mut [f32], x: &[f32], idx: &[u32]) {
    for (o, &i) in out.iter_mut().zip(idx) {
        *o = x[i as usize];
    }
}

/// `gx[j] += gout[idx[j]]` — the scatter-add backward (a gather-accumulate
/// over the *output* cotangent; elementwise in `j`).
pub fn scatter_bwd(gx: &mut [f32], gout: &[f32], idx: &[u32]) {
    for (g, &i) in gx.iter_mut().zip(idx) {
        *g += gout[i as usize];
    }
}

/// `out[idx[i]] += x[i]` — the sequential scatter-add body (also the
/// per-chunk kernel of the parallel scatter). Mode-dispatched: the
/// chunked variant unrolls the index stream by 8 to hide load latency;
/// both orders visit entries identically per output bin, so results are
/// bit-identical.
pub fn scatter_add(out: &mut [f32], idx: &[u32], x: &[f32]) {
    match kernel_mode() {
        KernelMode::Chunked => {
            let mut is = idx.chunks_exact(LANES);
            let mut xs = x.chunks_exact(LANES);
            for (ci, cx) in (&mut is).zip(&mut xs) {
                for j in 0..LANES {
                    out[ci[j] as usize] += cx[j];
                }
            }
            for (&i, &v) in is.remainder().iter().zip(xs.remainder()) {
                out[i as usize] += v;
            }
        }
        KernelMode::Scalar => {
            for (&i, &v) in idx.iter().zip(x) {
                out[i as usize] += v;
            }
        }
    }
}

/// Fused Adam update over one contiguous span: reads the gradient once
/// and updates moments + parameters in a single pass. `bc1`/`bc2` are the
/// bias-correction denominators for the current step.
#[allow(clippy::too_many_arguments)]
pub fn adam_update(
    data: &mut [f32],
    m: &mut [f32],
    v: &mut [f32],
    grad: &[f32],
    lr: f32,
    b1: f32,
    b2: f32,
    eps: f32,
    bc1: f32,
    bc2: f32,
) {
    let n = data.len();
    assert!(
        m.len() == n && v.len() == n && grad.len() == n,
        "adam operands disagree"
    );
    for i in 0..n {
        let g = grad[i];
        let mi = b1 * m[i] + (1.0 - b1) * g;
        let vi = b2 * v[i] + (1.0 - b2) * g * g;
        m[i] = mi;
        v[i] = vi;
        let mhat = mi / bc1;
        let vhat = vi / bc2;
        data[i] -= lr * mhat / (vhat.sqrt() + eps);
    }
}

// --- fused activation kernels ----------------------------------------------

/// `out[i] = kind.eval(x[i])` with the variant match hoisted out of the
/// loop so each arm compiles to a dedicated vectorizable pass.
pub fn activate_fwd(kind: Activation, x: &[f32], out: &mut [f32]) {
    #[inline(always)]
    fn map(x: &[f32], out: &mut [f32], f: impl Fn(f32) -> f32) {
        for (o, &v) in out.iter_mut().zip(x) {
            *o = f(v);
        }
    }
    match kind {
        Activation::Relu => map(x, out, |v| Activation::Relu.eval(v)),
        Activation::Sigmoid => map(x, out, |v| Activation::Sigmoid.eval(v)),
        Activation::LeakyRelu => map(x, out, |v| Activation::LeakyRelu.eval(v)),
        Activation::Exp => map(x, out, |v| Activation::Exp.eval(v)),
        Activation::Celu => map(x, out, |v| Activation::Celu.eval(v)),
    }
}

/// Fused activation backward: `gx[i] += gout[i]·kind.grad(x[i])` in one
/// pass per variant (one read of `x` and `gout`, one write of `gx`).
pub fn activate_bwd(kind: Activation, x: &[f32], gout: &[f32], gx: &mut [f32]) {
    #[inline(always)]
    fn fused(x: &[f32], gout: &[f32], gx: &mut [f32], df: impl Fn(f32) -> f32) {
        for ((g, &go), &v) in gx.iter_mut().zip(gout).zip(x) {
            *g += go * df(v);
        }
    }
    match kind {
        Activation::Relu => fused(x, gout, gx, |v| Activation::Relu.grad(v)),
        Activation::Sigmoid => fused(x, gout, gx, |v| Activation::Sigmoid.grad(v)),
        Activation::LeakyRelu => fused(x, gout, gx, |v| Activation::LeakyRelu.grad(v)),
        Activation::Exp => fused(x, gout, gx, |v| Activation::Exp.grad(v)),
        Activation::Celu => fused(x, gout, gx, |v| Activation::Celu.grad(v)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes kernel-mode flips across tests in this module.
    static MODE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn ulp_close(a: f32, b: f32, scale: f32) -> bool {
        (a - b).abs() <= 1e-5 * scale.abs().max(1.0)
    }

    #[test]
    fn chunked_sum_dot_match_scalar() {
        let x: Vec<f32> = (0..1003).map(|i| ((i % 37) as f32 - 18.0) * 0.37).collect();
        let w: Vec<f32> = (0..1003).map(|i| ((i % 11) as f32) * 0.21).collect();
        let (sc, ss) = (sum_chunked(&x), sum_scalar(&x));
        assert!(ulp_close(sc, ss, ss), "{sc} vs {ss}");
        let (dc, ds) = (dot_chunked(&x, &w), dot_scalar(&x, &w));
        assert!(ulp_close(dc, ds, ds), "{dc} vs {ds}");
    }

    #[test]
    fn short_inputs_are_bit_identical() {
        // Fewer than 8 elements never touch the lane accumulators, so the
        // chunked reductions degrade to the exact sequential order.
        for n in 0..8 {
            let x: Vec<f32> = (0..n).map(|i| (i as f32).sin()).collect();
            assert_eq!(sum_chunked(&x), sum_scalar(&x), "n={n}");
            assert_eq!(dot_chunked(&x, &x), dot_scalar(&x, &x), "n={n}");
        }
    }

    #[test]
    fn max_handles_empty_and_tail() {
        assert_eq!(max(&[]), f32::NEG_INFINITY);
        let x: Vec<f32> = (0..19).map(|i| ((i * 7) % 13) as f32).collect();
        let want = x.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        assert_eq!(max(&x), want);
    }

    #[test]
    fn softmax_modes_agree_and_normalize() {
        let _guard = MODE_LOCK.lock().unwrap();
        let x: Vec<f32> = (0..21).map(|i| ((i % 9) as f32 - 4.0) * 0.7).collect();
        let mut a = vec![0.0; x.len()];
        let mut b = vec![0.0; x.len()];
        softmax_into_chunked(&x, &mut a);
        softmax_into_scalar(&x, &mut b);
        assert!(ulp_close(a.iter().sum::<f32>(), 1.0, 1.0));
        for (u, v) in a.iter().zip(&b) {
            assert!(ulp_close(*u, *v, 1.0), "{u} vs {v}");
        }
    }

    #[test]
    fn fused_mul_backward_matches_reference() {
        let n = 37;
        let xa: Vec<f32> = (0..n).map(|i| (i as f32) * 0.3 - 2.0).collect();
        let xb: Vec<f32> = (0..n).map(|i| 1.5 - (i as f32) * 0.1).collect();
        let gout: Vec<f32> = (0..n).map(|i| ((i % 5) as f32) * 0.25).collect();
        let mut ga = vec![0.5f32; n];
        let mut gb = vec![-0.5f32; n];
        mul_bwd(&mut ga, &mut gb, &gout, &xa, &xb);
        for i in 0..n {
            assert_eq!(ga[i], 0.5 + gout[i] * xb[i]);
            assert_eq!(gb[i], -0.5 + gout[i] * xa[i]);
        }
    }

    #[test]
    fn scatter_add_modes_are_bit_identical() {
        let _guard = MODE_LOCK.lock().unwrap();
        let idx: Vec<u32> = (0..501).map(|i| (i * 13 % 97) as u32).collect();
        let x: Vec<f32> = (0..501).map(|i| (i as f32) * 0.01).collect();
        let prev = kernel_mode();
        set_kernel_mode(KernelMode::Chunked);
        let mut a = vec![0.0f32; 97];
        scatter_add(&mut a, &idx, &x);
        set_kernel_mode(KernelMode::Scalar);
        let mut b = vec![0.0f32; 97];
        scatter_add(&mut b, &idx, &x);
        set_kernel_mode(prev);
        assert_eq!(a, b);
    }

    #[test]
    fn mode_override_roundtrip() {
        let _guard = MODE_LOCK.lock().unwrap();
        let prev = kernel_mode();
        set_kernel_mode(KernelMode::Scalar);
        assert_eq!(kernel_mode(), KernelMode::Scalar);
        set_kernel_mode(KernelMode::Chunked);
        assert_eq!(kernel_mode(), KernelMode::Chunked);
        set_kernel_mode(prev);
    }
}
