//! Op definitions and their forward/backward slice kernels.
//!
//! Each op reads input value slices and writes one output slice (forward),
//! or reads the output cotangent and accumulates into input cotangents
//! (backward). Kernels above the parallel threshold shard across worker
//! threads via [`crate::parallel`].

use std::sync::Arc;

use crate::activation::Activation;
use crate::graph::VarId;
use crate::parallel::{self, par_dot, par_map_mut, par_scatter_add, par_sum, SendPtr};
use crate::segments::Segments;

/// A node in the tape. Inputs always precede the node itself, so a single
/// in-order sweep computes the forward pass and a reverse sweep the
/// backward pass.
#[derive(Debug, Clone)]
pub(crate) enum Op {
    /// An input buffer; `trainable` leaves receive Adam updates.
    Leaf { trainable: bool },
    /// `out = a + b` (elementwise, equal lengths).
    Add { a: VarId, b: VarId },
    /// `out = a * b` (elementwise, equal lengths).
    Mul { a: VarId, b: VarId },
    /// `out = k · x`.
    Scale { x: VarId, k: f32 },
    /// `out = x + c` for a constant vector `c`.
    AddConst { x: VarId, c: Arc<Vec<f32>> },
    /// `out = x ⊙ c` for a constant vector `c`.
    MulConst { x: VarId, c: Arc<Vec<f32>> },
    /// `out = x / s[0]` where `s` is a length-1 variable (no gradient is
    /// propagated to `s`; it is the annealing temperature).
    DivByScalarVar { x: VarId, s: VarId },
    /// Softmax within each CSR segment.
    SegSoftmax { x: VarId, seg: Arc<Segments> },
    /// `out[i] = x[idx[i]]`.
    Gather { x: VarId, idx: Arc<Vec<u32>> },
    /// `out[j] = Σ_{i: idx[i]=j} x[i]` (output length fixed at creation).
    ScatterAdd { x: VarId, idx: Arc<Vec<u32>> },
    /// Elementwise activation.
    Activate { x: VarId, kind: Activation },
    /// Scalar `out = Σ_i x[i]`.
    SumAll { x: VarId },
    /// Scalar `out = Σ_i x[i]·w[i]` for a constant weight vector.
    DotConst { x: VarId, w: Arc<Vec<f32>> },
    /// Scalar `out = Σ_j k_j · x_j[0]` over scalar inputs.
    Combine { terms: Vec<(VarId, f32)> },
}

impl Op {
    /// Forward kernel: reads `get(v)` for inputs, fills `out`.
    pub(crate) fn forward<'a>(&self, get: &dyn Fn(VarId) -> &'a [f32], out: &mut [f32]) {
        match self {
            Op::Leaf { .. } => {}
            Op::Add { a, b } => {
                let (xa, xb) = (get(*a), get(*b));
                par_map_mut(out, |i, v| *v = xa[i] + xb[i]);
            }
            Op::Mul { a, b } => {
                let (xa, xb) = (get(*a), get(*b));
                par_map_mut(out, |i, v| *v = xa[i] * xb[i]);
            }
            Op::Scale { x, k } => {
                let x = get(*x);
                let k = *k;
                par_map_mut(out, |i, v| *v = k * x[i]);
            }
            Op::AddConst { x, c } => {
                let x = get(*x);
                par_map_mut(out, |i, v| *v = x[i] + c[i]);
            }
            Op::MulConst { x, c } => {
                let x = get(*x);
                par_map_mut(out, |i, v| *v = x[i] * c[i]);
            }
            Op::DivByScalarVar { x, s } => {
                let x = get(*x);
                let s = get(*s)[0];
                let inv = 1.0 / s;
                par_map_mut(out, |i, v| *v = x[i] * inv);
            }
            Op::SegSoftmax { x, seg } => {
                let x = get(*x);
                let outp = SendPtr(out.as_mut_ptr());
                let seg = &**seg;
                // Segments partition the output, so each block of segments
                // owns a disjoint window — safe and bit-stable to shard.
                parallel::par_blocks(seg.num_segments(), seg.len(), move |block| {
                    for s in block {
                        let r = seg.segment(s);
                        // SAFETY: segment ranges are disjoint per block.
                        let o = unsafe {
                            std::slice::from_raw_parts_mut(outp.get().add(r.start), r.len())
                        };
                        softmax_into(&x[r], o);
                    }
                });
            }
            Op::Gather { x, idx } => {
                let x = get(*x);
                par_map_mut(out, |i, v| *v = x[idx[i] as usize]);
            }
            Op::ScatterAdd { x, idx, .. } => {
                let x = get(*x);
                out.fill(0.0);
                par_scatter_add(out, idx, x);
            }
            Op::Activate { x, kind } => {
                let x = get(*x);
                let kind = *kind;
                par_map_mut(out, |i, v| *v = kind.eval(x[i]));
            }
            Op::SumAll { x } => {
                out[0] = par_sum(get(*x));
            }
            Op::DotConst { x, w } => {
                out[0] = par_dot(get(*x), w);
            }
            Op::Combine { terms } => {
                out[0] = terms.iter().map(|(v, k)| k * get(*v)[0]).sum();
            }
        }
    }

    /// Visits every input that receives gradient from this op — the edge
    /// set the loss-reachability analysis walks. Note this is *not* the
    /// full input set: `DivByScalarVar` reads its scalar but propagates no
    /// gradient into it.
    pub(crate) fn for_each_grad_input(&self, mut f: impl FnMut(VarId)) {
        match self {
            Op::Leaf { .. } => {}
            Op::Add { a, b } | Op::Mul { a, b } => {
                f(*a);
                f(*b);
            }
            Op::Scale { x, .. }
            | Op::AddConst { x, .. }
            | Op::MulConst { x, .. }
            | Op::DivByScalarVar { x, .. }
            | Op::SegSoftmax { x, .. }
            | Op::Gather { x, .. }
            | Op::ScatterAdd { x, .. }
            | Op::Activate { x, .. }
            | Op::SumAll { x }
            | Op::DotConst { x, .. } => f(*x),
            Op::Combine { terms } => {
                for (v, _) in terms {
                    f(*v);
                }
            }
        }
    }
}

/// Numerically-stable softmax of `x` into `out` (same length).
pub(crate) fn softmax_into(x: &[f32], out: &mut [f32]) {
    if x.is_empty() {
        return;
    }
    let max = x.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for (o, &v) in out.iter_mut().zip(x) {
        let e = (v - max).exp();
        *o = e;
        sum += e;
    }
    let inv = 1.0 / sum;
    for o in out.iter_mut() {
        *o *= inv;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_sums_to_one() {
        let mut out = vec![0.0; 4];
        softmax_into(&[1.0, 2.0, 3.0, 4.0], &mut out);
        let sum: f32 = out.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(out.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let mut a = vec![0.0; 3];
        let mut b = vec![0.0; 3];
        softmax_into(&[1.0, 2.0, 3.0], &mut a);
        softmax_into(&[101.0, 102.0, 103.0], &mut b);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_handles_large_logits() {
        let mut out = vec![0.0; 2];
        softmax_into(&[1000.0, 0.0], &mut out);
        assert!((out[0] - 1.0).abs() < 1e-6);
        assert!(out.iter().all(|v| v.is_finite()));
    }
}
