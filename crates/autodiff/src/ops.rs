//! Op definitions and their forward/backward slice kernels.
//!
//! Each op reads input value slices and writes one output slice (forward),
//! or reads the output cotangent and accumulates into input cotangents
//! (backward). The element loops live in [`crate::kernels`] as chunked
//! 8-lane passes (with scalar fallbacks); kernels above the parallel
//! threshold shard across worker threads via [`crate::parallel`].
//!
//! # Batch axis
//!
//! Every buffer may carry a trailing batch of `B` independent instances
//! in **instance-major** layout: the physical buffer is `B` consecutive
//! logical slices. Pure elementwise ops process the whole physical
//! buffer in one pass (bit-identical to per-instance processing);
//! instance-coupled ops (reductions, segmented softmax, gather/scatter,
//! the per-instance constants) loop over instances and apply the exact
//! single-instance kernel — including its parallel-threshold decision —
//! to each slice, so a batched instance reproduces the single-instance
//! trajectory bit for bit.

use std::sync::Arc;

use crate::activation::Activation;
use crate::graph::VarId;
use crate::kernels;
use crate::parallel::{self, SendPtr};
use crate::segments::Segments;

/// A node in the tape. Inputs always precede the node itself, so a single
/// in-order sweep computes the forward pass and a reverse sweep the
/// backward pass.
#[derive(Debug, Clone)]
pub(crate) enum Op {
    /// An input buffer; `trainable` leaves receive Adam updates.
    Leaf { trainable: bool },
    /// `out = a + b` (elementwise, equal lengths).
    Add { a: VarId, b: VarId },
    /// `out = a * b` (elementwise, equal lengths).
    Mul { a: VarId, b: VarId },
    /// `out = k · x`.
    Scale { x: VarId, k: f32 },
    /// `out = x + c` for a constant vector `c` (shared across instances).
    AddConst { x: VarId, c: Arc<Vec<f32>> },
    /// `out = x ⊙ c` for a constant vector `c` (shared across instances).
    MulConst { x: VarId, c: Arc<Vec<f32>> },
    /// `out = x / s[b]` per instance, where `s` is a logical length-1
    /// variable (no gradient is propagated to `s`; it is the annealing
    /// temperature — one per batch instance).
    DivByScalarVar { x: VarId, s: VarId },
    /// Softmax within each CSR segment, per instance.
    SegSoftmax { x: VarId, seg: Arc<Segments> },
    /// `out[i] = x[idx[i]]` per instance (shared index table).
    Gather { x: VarId, idx: Arc<Vec<u32>> },
    /// `out[j] = Σ_{i: idx[i]=j} x[i]` per instance (output length fixed
    /// at creation).
    ScatterAdd { x: VarId, idx: Arc<Vec<u32>> },
    /// Elementwise activation.
    Activate { x: VarId, kind: Activation },
    /// Per-instance scalar `out[b] = Σ_i x[b·n + i]`.
    SumAll { x: VarId },
    /// Per-instance scalar `out[b] = Σ_i x[b·n + i]·w[i]` for a constant
    /// weight vector.
    DotConst { x: VarId, w: Arc<Vec<f32>> },
    /// Per-instance scalar `out[b] = Σ_j k_j · x_j[b]` over scalar inputs.
    Combine { terms: Vec<(VarId, f32)> },
}

/// The `b`-th logical slice of an instance-major physical buffer whose
/// logical length is `n`.
#[inline]
fn inst(x: &[f32], b: usize, n: usize) -> &[f32] {
    &x[b * n..(b + 1) * n]
}

/// Shards `out` into parallel ranges and hands each range's mutable
/// window plus its global range to `f` — the slice-kernel analogue of
/// `par_map_mut`.
fn par_out<F>(out: &mut [f32], f: F)
where
    F: Fn(std::ops::Range<usize>, &mut [f32]) + Sync,
{
    let outp = SendPtr(out.as_mut_ptr());
    parallel::par_apply(out.len(), move |r| {
        // SAFETY: par_apply ranges are disjoint and `out` outlives the
        // dispatch.
        let o = unsafe { std::slice::from_raw_parts_mut(outp.get().add(r.start), r.len()) };
        f(r, o);
    });
}

impl Op {
    /// Forward kernel: reads `get(v)` for inputs (physical buffers), fills
    /// `out` (`batch` consecutive logical slices).
    pub(crate) fn forward<'a>(
        &self,
        get: &dyn Fn(VarId) -> &'a [f32],
        out: &mut [f32],
        batch: usize,
    ) {
        match self {
            Op::Leaf { .. } => {}
            Op::Add { a, b } => {
                let (xa, xb) = (get(*a), get(*b));
                par_out(out, |r, o| kernels::add2(o, &xa[r.clone()], &xb[r]));
            }
            Op::Mul { a, b } => {
                let (xa, xb) = (get(*a), get(*b));
                par_out(out, |r, o| kernels::mul2(o, &xa[r.clone()], &xb[r]));
            }
            Op::Scale { x, k } => {
                let x = get(*x);
                let k = *k;
                par_out(out, |r, o| kernels::scale_into(o, &x[r], k));
            }
            Op::AddConst { x, c } => {
                // One dispatch spans all instances; the range splits at
                // instance boundaries so `c` indexes stay logical.
                let x = get(*x);
                let n = c.len();
                par_out(out, |r, o| {
                    let base = r.start;
                    parallel::split_batch(r, n, |b, lr| {
                        let p = b * n + lr.start..b * n + lr.end;
                        kernels::add2(&mut o[p.start - base..p.end - base], &x[p], &c[lr]);
                    });
                });
            }
            Op::MulConst { x, c } => {
                let x = get(*x);
                let n = c.len();
                par_out(out, |r, o| {
                    let base = r.start;
                    parallel::split_batch(r, n, |b, lr| {
                        let p = b * n + lr.start..b * n + lr.end;
                        kernels::mul2(&mut o[p.start - base..p.end - base], &x[p], &c[lr]);
                    });
                });
            }
            Op::DivByScalarVar { x, s } => {
                let x = get(*x);
                let s = get(*s);
                let n = out.len() / batch;
                par_out(out, |r, o| {
                    let base = r.start;
                    parallel::split_batch(r, n, |b, lr| {
                        let p = b * n + lr.start..b * n + lr.end;
                        kernels::scale_into(
                            &mut o[p.start - base..p.end - base],
                            &x[p],
                            1.0 / s[b],
                        );
                    });
                });
            }
            Op::SegSoftmax { x, seg } => {
                // All `batch × num_segments` softmaxes go out in one
                // dispatch. Segments partition each instance's window, so
                // every (b, s) pair owns a disjoint output slice; each
                // softmax is computed by exactly one worker, so the
                // result is bit-stable at any thread count.
                let x = get(*x);
                let seg = &**seg;
                let n = seg.len();
                let nseg = seg.num_segments();
                let outp = SendPtr(out.as_mut_ptr());
                parallel::par_blocks(batch * nseg, batch * n, move |block| {
                    for t in block {
                        let (b, s) = (t / nseg, t % nseg);
                        let r = seg.segment(s);
                        // SAFETY: (instance, segment) windows are disjoint.
                        let o = unsafe {
                            std::slice::from_raw_parts_mut(outp.get().add(b * n + r.start), r.len())
                        };
                        kernels::softmax_into(&x[b * n + r.start..b * n + r.end], o);
                    }
                });
            }
            Op::Gather { x, idx } => {
                let x = get(*x);
                let n_out = idx.len();
                let n_in = x.len() / batch;
                par_out(out, |r, o| {
                    let base = r.start;
                    parallel::split_batch(r, n_out, |b, lr| {
                        let p = b * n_out + lr.start..b * n_out + lr.end;
                        kernels::gather_fwd(
                            &mut o[p.start - base..p.end - base],
                            inst(x, b, n_in),
                            &idx[lr],
                        );
                    });
                });
            }
            Op::ScatterAdd { x, idx, .. } => {
                let x = get(*x);
                out.fill(0.0);
                parallel::par_scatter_add_batched(out, idx, x, batch);
            }
            Op::Activate { x, kind } => {
                let x = get(*x);
                let kind = *kind;
                par_out(out, |r, o| kernels::activate_fwd(kind, &x[r], o));
            }
            Op::SumAll { x } => {
                parallel::par_sum_batched(get(*x), batch, out);
            }
            Op::DotConst { x, w } => {
                parallel::par_dot_batched(get(*x), w, batch, out);
            }
            Op::Combine { terms } => {
                for (b, o) in out.iter_mut().enumerate() {
                    *o = terms.iter().map(|(v, k)| k * get(*v)[b]).sum();
                }
            }
        }
    }

    /// Visits every input that receives gradient from this op — the edge
    /// set the loss-reachability analysis walks. Note this is *not* the
    /// full input set: `DivByScalarVar` reads its scalar but propagates no
    /// gradient into it.
    pub(crate) fn for_each_grad_input(&self, mut f: impl FnMut(VarId)) {
        match self {
            Op::Leaf { .. } => {}
            Op::Add { a, b } | Op::Mul { a, b } => {
                f(*a);
                f(*b);
            }
            Op::Scale { x, .. }
            | Op::AddConst { x, .. }
            | Op::MulConst { x, .. }
            | Op::DivByScalarVar { x, .. }
            | Op::SegSoftmax { x, .. }
            | Op::Gather { x, .. }
            | Op::ScatterAdd { x, .. }
            | Op::Activate { x, .. }
            | Op::SumAll { x }
            | Op::DotConst { x, .. } => f(*x),
            Op::Combine { terms } => {
                for (v, _) in terms {
                    f(*v);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::kernels::softmax_into;

    #[test]
    fn softmax_sums_to_one() {
        let mut out = vec![0.0; 4];
        softmax_into(&[1.0, 2.0, 3.0, 4.0], &mut out);
        let sum: f32 = out.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(out.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let mut a = vec![0.0; 3];
        let mut b = vec![0.0; 3];
        softmax_into(&[1.0, 2.0, 3.0], &mut a);
        softmax_into(&[101.0, 102.0, 103.0], &mut b);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_handles_large_logits() {
        let mut out = vec![0.0; 2];
        softmax_into(&[1000.0, 0.0], &mut out);
        assert!((out[0] - 1.0).abs() < 1e-6);
        assert!(out.iter().all(|v| v.is_finite()));
    }
}
