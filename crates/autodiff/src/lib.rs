#![warn(missing_docs)]

//! A small reverse-mode automatic-differentiation engine.
//!
//! The DGR paper implements its differentiable solver in PyTorch and runs
//! it on a GPU. Mature GPU autodiff does not exist in the offline Rust
//! ecosystem, so this crate is the **substitution substrate**: it provides
//! exactly the tensor operations DGR's expected-cost computation needs —
//! on dense `f32` buffers, with a tape of statically-shaped ops, and
//! multi-threaded CPU kernels standing in for CUDA streams:
//!
//! * [`Graph`] — the op tape; build once, then [`Graph::forward`] /
//!   [`Graph::backward`] every iteration,
//! * segmented [(Gumbel-)softmax](Graph::segmented_softmax) over CSR
//!   groups (one group per net / per sub-net),
//! * [`gather`](Graph::gather) / [`scatter_add`](Graph::scatter_add) —
//!   the sparse demand-accumulation kernels,
//! * [`Activation`] — ReLU / sigmoid / LeakyReLU / exp / CELU, the Fig. 6
//!   overflow-cost family,
//! * [`Adam`] — the optimizer used by the paper,
//! * [`gumbel::fill_gumbel`] — Gumbel(0, 1) noise for the stochastic
//!   softmax.
//!
//! # Examples
//!
//! ```
//! use dgr_autodiff::{Adam, Graph, Segments};
//! use std::sync::Arc;
//!
//! // minimize ‖softmax(w) − [0, 1]‖ via a toy quadratic-free objective:
//! // loss = Σ softmax(w) · c with c = [1, 0] pushes mass onto index 1.
//! let mut g = Graph::new();
//! let w = g.param(vec![0.0, 0.0]);
//! let seg = Arc::new(Segments::from_offsets(vec![0, 2])?);
//! let p = g.segmented_softmax(w, seg);
//! let loss = g.dot_const(p, Arc::new(vec![1.0, 0.0]));
//! let mut adam = Adam::new(&g, 0.1);
//! for _ in 0..100 {
//!     g.forward();
//!     g.backward(loss);
//!     adam.step(&mut g);
//! }
//! g.forward();
//! assert!(g.value(p)[1] > 0.9);
//! # Ok::<(), dgr_autodiff::AutodiffError>(())
//! ```

pub mod activation;
pub mod adam;
pub mod graph;
pub mod gumbel;
pub mod kernels;
pub mod ops;
pub mod parallel;
pub mod segments;

pub use activation::Activation;
pub use adam::Adam;
pub use graph::{Graph, VarId};
pub use kernels::{kernel_mode, set_kernel_mode, KernelMode};
pub use segments::Segments;

/// Errors produced while assembling or executing a graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AutodiffError {
    /// CSR segment offsets were empty, non-monotone, or did not start at 0.
    BadSegments(String),
    /// Two operands had incompatible lengths.
    ShapeMismatch {
        /// Length of the left operand.
        left: usize,
        /// Length of the right operand.
        right: usize,
    },
    /// An index table referenced an element outside its target.
    IndexOutOfRange {
        /// The offending index value.
        index: u32,
        /// Length of the indexed buffer.
        len: usize,
    },
}

impl std::fmt::Display for AutodiffError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AutodiffError::BadSegments(why) => write!(f, "invalid segment offsets: {why}"),
            AutodiffError::ShapeMismatch { left, right } => {
                write!(f, "shape mismatch: {left} vs {right}")
            }
            AutodiffError::IndexOutOfRange { index, len } => {
                write!(f, "index {index} out of range for length {len}")
            }
        }
    }
}

impl std::error::Error for AutodiffError {}
