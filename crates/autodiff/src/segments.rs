//! CSR segment descriptors for grouped (per-net / per-subnet) operations.

use crate::AutodiffError;

/// A partition of `0..len()` into contiguous segments, described by CSR
/// offsets. Segment `s` covers `offsets[s]..offsets[s+1]`.
///
/// Segmented softmax normalizes within each segment — one segment per net
/// (tree probabilities `q`) or per 2-pin sub-net (path probabilities `p`).
///
/// # Examples
///
/// ```
/// use dgr_autodiff::Segments;
///
/// let seg = Segments::from_offsets(vec![0, 2, 5])?;
/// assert_eq!(seg.num_segments(), 2);
/// assert_eq!(seg.segment(1), 2..5);
/// # Ok::<(), dgr_autodiff::AutodiffError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segments {
    offsets: Vec<u32>,
}

impl Segments {
    /// Creates a segment table from CSR offsets.
    ///
    /// # Errors
    ///
    /// Returns [`AutodiffError::BadSegments`] if `offsets` is empty, does
    /// not start at 0, or is not monotonically non-decreasing.
    pub fn from_offsets(offsets: Vec<u32>) -> Result<Self, AutodiffError> {
        if offsets.is_empty() {
            return Err(AutodiffError::BadSegments("empty offsets".into()));
        }
        if offsets[0] != 0 {
            return Err(AutodiffError::BadSegments("offsets must start at 0".into()));
        }
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err(AutodiffError::BadSegments("offsets not monotone".into()));
        }
        Ok(Segments { offsets })
    }

    /// Builds uniform segments: `count` segments of `width` elements each.
    ///
    /// # Examples
    ///
    /// ```
    /// use dgr_autodiff::Segments;
    /// let seg = Segments::uniform(3, 2);
    /// assert_eq!(seg.num_segments(), 3);
    /// assert_eq!(seg.len(), 6);
    /// ```
    pub fn uniform(count: usize, width: usize) -> Self {
        Segments {
            offsets: (0..=count).map(|i| (i * width) as u32).collect(),
        }
    }

    /// Number of segments.
    pub fn num_segments(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of elements covered.
    pub fn len(&self) -> usize {
        *self.offsets.last().expect("non-empty offsets") as usize
    }

    /// Whether the table covers zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The element range of segment `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s >= num_segments()`.
    pub fn segment(&self, s: usize) -> std::ops::Range<usize> {
        self.offsets[s] as usize..self.offsets[s + 1] as usize
    }

    /// The raw CSR offsets.
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_offsets() {
        let s = Segments::from_offsets(vec![0, 3, 3, 7]).unwrap();
        assert_eq!(s.num_segments(), 3);
        assert_eq!(s.len(), 7);
        assert_eq!(s.segment(0), 0..3);
        assert_eq!(s.segment(1), 3..3); // empty segment allowed
        assert_eq!(s.segment(2), 3..7);
    }

    #[test]
    fn rejects_bad_offsets() {
        assert!(Segments::from_offsets(vec![]).is_err());
        assert!(Segments::from_offsets(vec![1, 2]).is_err());
        assert!(Segments::from_offsets(vec![0, 5, 3]).is_err());
    }

    #[test]
    fn uniform_layout() {
        let s = Segments::uniform(4, 3);
        assert_eq!(s.num_segments(), 4);
        assert_eq!(s.segment(2), 6..9);
    }

    #[test]
    fn empty_table() {
        let s = Segments::from_offsets(vec![0]).unwrap();
        assert_eq!(s.num_segments(), 0);
        assert!(s.is_empty());
    }
}
