//! A minimal `cargo bench` harness (no external dependencies).
//!
//! The build environment has no registry access, so instead of criterion
//! the `[[bench]]` targets use this hand-rolled harness: each benchmark
//! is warmed up, then timed over a fixed wall-clock budget, and the
//! median / mean / min per-iteration times are printed as one row.
//!
//! Command-line behaviour mirrors the parts of the criterion CLI that
//! `cargo bench` itself exercises: flags are ignored and any bare
//! argument is a substring filter on benchmark names.

use std::time::{Duration, Instant};

/// Benchmark runner: owns the name filter and per-bench time budget.
#[derive(Debug)]
pub struct Harness {
    filter: Option<String>,
    /// Wall-clock measurement budget per benchmark.
    budget: Duration,
    min_samples: usize,
}

impl Harness {
    /// Builds a harness from `std::env::args`: bare arguments become a
    /// substring filter (flags such as `--bench`, which cargo passes, are
    /// ignored). The `BENCH_BUDGET_MS` environment variable overrides the
    /// default 500 ms measurement budget per benchmark.
    pub fn from_args() -> Self {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'))
            .filter(|a| !a.is_empty());
        let budget_ms = std::env::var("BENCH_BUDGET_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(500u64);
        Harness {
            filter,
            budget: Duration::from_millis(budget_ms),
            min_samples: 5,
        }
    }

    fn skips(&self, name: &str) -> bool {
        self.filter.as_deref().is_some_and(|f| !name.contains(f))
    }

    /// Times `f`, printing per-iteration statistics.
    pub fn bench<F: FnMut()>(&mut self, name: &str, f: F) {
        self.bench_throughput(name, 0, f);
    }

    /// Times `f`; when `elements > 0` an elements-per-second column is
    /// added (criterion's `Throughput::Elements` analogue).
    pub fn bench_throughput<F: FnMut()>(&mut self, name: &str, elements: u64, mut f: F) {
        if self.skips(name) {
            return;
        }
        // Warm-up: one untimed call, then estimate the per-call cost.
        f();
        let probe_start = Instant::now();
        f();
        let probe = probe_start.elapsed().max(Duration::from_nanos(50));
        let total_iters = (self.budget.as_nanos() / probe.as_nanos()).clamp(1, 1_000_000) as usize;
        let samples = total_iters.min(50).max(self.min_samples);
        let iters_per_sample = (total_iters / samples).max(1);
        let mut times: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                f();
            }
            times.push(start.elapsed().as_secs_f64() / iters_per_sample as f64);
        }
        times.sort_by(|a, b| a.total_cmp(b));
        let median = times[times.len() / 2];
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        let min = times[0];
        let mut row = format!(
            "{name:<44} median {:>12}  mean {:>12}  min {:>12}  ({samples} samples × {iters_per_sample} iters)",
            fmt_time(median),
            fmt_time(mean),
            fmt_time(min),
        );
        if elements > 0 {
            row.push_str(&format!("  {:.3} Melem/s", elements as f64 / median / 1e6));
        }
        println!("{row}");
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats_across_scales() {
        assert_eq!(fmt_time(2.5), "2.500 s");
        assert_eq!(fmt_time(2.5e-3), "2.500 ms");
        assert_eq!(fmt_time(2.5e-6), "2.500 µs");
        assert_eq!(fmt_time(2.5e-9), "2.5 ns");
    }

    #[test]
    fn filter_skips_non_matching_names() {
        let h = Harness {
            filter: Some("softmax".into()),
            budget: Duration::from_millis(1),
            min_samples: 1,
        };
        assert!(!h.skips("segmented_softmax/1000"));
        assert!(h.skips("maze_route_256"));
    }

    #[test]
    fn bench_runs_the_closure() {
        let mut h = Harness {
            filter: None,
            budget: Duration::from_millis(2),
            min_samples: 1,
        };
        let mut calls = 0u64;
        h.bench("counter", || calls += 1);
        assert!(calls > 0);
    }
}
