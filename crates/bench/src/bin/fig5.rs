//! Fig. 5 — runtime (a) and memory (b) scalability vs net count.
//!
//! Sweeps the ISPD-like generator over a range of net counts and prints
//! one series row per size: DGR runtime, CUGR2-style runtime, peak RSS,
//! and the tape + forest byte accounting (the reproduction's "GPU
//! memory" analogue). The paper's qualitative claims: DGR runtime grows
//! near-linearly and crosses below the sequential router at scale;
//! memory is linear in net count.
//!
//! ```text
//! cargo run -p dgr-bench --release --bin fig5 [--fast]
//! ```

use dgr_baseline::SequentialRouter;
use dgr_bench::{dgr_config, fast_flag, run_baseline};
use dgr_core::memory::memory_snapshot;
use dgr_core::DgrRouter;
use dgr_io::{IspdLikeConfig, IspdLikeGenerator};

fn main() {
    let fast = fast_flag();
    let sizes: Vec<usize> = if fast {
        vec![250, 500, 1000, 2000]
    } else {
        vec![1000, 2000, 4000, 8000, 16_000, 32_000, 64_000]
    };

    println!("Fig. 5: runtime and memory vs number of nets");
    println!(
        "{:>8} {:>8} | {:>10} {:>10} | {:>12} {:>14} {:>22}",
        "nets",
        "grid",
        "DGR t(s)",
        "seq t(s)",
        "peak RSS MB",
        "tape+forest MB",
        "loss(first→final)"
    );

    for &nets in &sizes {
        // grid area scales with net count to keep density comparable
        let side = ((nets as f64).sqrt() * 1.6).ceil() as u32;
        let config = IspdLikeConfig {
            width: side.max(24),
            height: side.max(24),
            num_nets: nets,
            num_layers: 9,
            base_capacity: 9.0,
            clusters: (nets / 120).max(4),
            ..IspdLikeConfig::default()
        };
        let design = IspdLikeGenerator::new(config).generate().expect("generate");

        let mut cfg = dgr_config(fast, 5);
        // the scalability study fixes a smaller iteration count so the
        // x-axis sweep dominates runtime (documented in EXPERIMENTS.md)
        cfg.iterations = if fast { 100 } else { 300 };
        let t0 = std::time::Instant::now();
        let solution = DgrRouter::new(cfg).route(&design).expect("dgr route");
        let dgr_time = t0.elapsed();
        let report = solution.train_report.as_ref().expect("train report");
        let graph_mb = report.graph_bytes as f64 / (1024.0 * 1024.0);
        let snap = memory_snapshot();
        // the retained curve replaces the old ad-hoc final-loss readout
        let loss0 = report.curve.first().map_or(f32::NAN, |p| p.loss);

        let seq = run_baseline(&design, |d| SequentialRouter::default().route(d))
            .expect("sequential route");

        println!(
            "{:>8} {:>8} | {:>10.2} {:>10.2} | {:>12.1} {:>14.1} {:>10.1} → {:<9.1}",
            nets,
            format!("{side}x{side}"),
            dgr_time.as_secs_f64(),
            seq.runtime.as_secs_f64(),
            snap.peak_rss as f64 / (1024.0 * 1024.0),
            graph_mb,
            loss0,
            report.final_loss,
        );
    }
    println!();
    println!("Expected shapes: both runtimes near-linear; DGR's slope flatter at scale");
    println!("(concurrent optimization avoids rip-up rounds); memory linear in nets.");
}
