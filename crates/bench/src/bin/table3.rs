//! Table 3 — DGR vs SPRoute-style and Lagrangian routers on the
//! ispd18-like suite.
//!
//! Reports overflowed edges (all zero in the paper), wirelength (paper:
//! DGR −4.08 % vs SPRoute 2.0, −2.2 % vs Yao) and vias (paper: DGR worse
//! on the small cases, better from test5 up, −2.54 % / −1.76 % overall).
//!
//! ```text
//! cargo run -p dgr-bench --release --bin table3 [--fast]
//! ```

use dgr_baseline::{LagrangianRouter, SprouteRouter};
use dgr_bench::{dgr_config, fast_flag, generate_case, ratio, run_baseline, run_dgr};
use dgr_io::ispd18_cases;

fn main() {
    let fast = fast_flag();
    println!("Table 3: comparison with SPRoute-style and Lagrangian routers (ispd18-like)");
    println!(
        "{:<14} | {:>4} {:>4} {:>4} | {:>11} {:>11} {:>11} | {:>9} {:>9} {:>9}",
        "case",
        "ovfS",
        "ovfY",
        "ovfD",
        "WL sproute",
        "WL lagr",
        "WL DGR",
        "via spr",
        "via lagr",
        "via DGR"
    );

    let mut sums = [0.0f64; 9];
    for case in ispd18_cases() {
        let design = generate_case(case.config.clone(), fast).expect("generate case");
        let spr =
            run_baseline(&design, |d| SprouteRouter::default().route(d)).expect("sproute route");
        let lag = run_baseline(&design, |d| LagrangianRouter::default().route(d))
            .expect("lagrangian route");
        let dgr = run_dgr(&design, dgr_config(fast, 11)).expect("dgr route");

        println!(
            "{:<14} | {:>4} {:>4} {:>4} | {:>11} {:>11} {:>11} | {:>9} {:>9} {:>9}",
            case.name,
            spr.overflow_edges(),
            lag.overflow_edges(),
            dgr.overflow_edges(),
            spr.wirelength(),
            lag.wirelength(),
            dgr.wirelength(),
            spr.vias(),
            lag.vias(),
            dgr.vias(),
        );
        sums[0] += spr.overflow_edges() as f64;
        sums[1] += lag.overflow_edges() as f64;
        sums[2] += dgr.overflow_edges() as f64;
        sums[3] += spr.wirelength() as f64;
        sums[4] += lag.wirelength() as f64;
        sums[5] += dgr.wirelength() as f64;
        sums[6] += spr.vias() as f64;
        sums[7] += lag.vias() as f64;
        sums[8] += dgr.vias() as f64;
    }

    println!(
        "\nRatios vs DGR: wirelength sproute {:.4}, lagrangian {:.4}; vias sproute {:.4}, lagrangian {:.4}",
        ratio(sums[3], sums[5]),
        ratio(sums[4], sums[5]),
        ratio(sums[6], sums[8]),
        ratio(sums[7], sums[8]),
    );
    println!("Paper reference: WL ratios 1.0408 / 1.0220, via ratios 1.0254 / 1.0176 (DGR best).");
}
