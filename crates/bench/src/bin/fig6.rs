//! Fig. 6 — the overflow-activation study.
//!
//! For each activation f ∈ {ReLU, sigmoid, LeakyReLU, exp, CELU} and a
//! small hyper-parameter grid, routes the two study cases and prints one
//! scatter point per run: x = 0.5·WL + 4·via, y = weighted overflow
//! (10·n₁ + 1000·n₂ + 10000·peak). The CUGR2-style router's point is the
//! reference mark. Paper finding: sigmoid dominates and beats CUGR2 on
//! most runs.
//!
//! ```text
//! cargo run -p dgr-bench --release --bin fig6 [--fast]
//! ```

use dgr_autodiff::Activation;
use dgr_baseline::SequentialRouter;
use dgr_bench::{dgr_config, fast_flag, generate_case, run_baseline, run_dgr};
use dgr_io::catalog_case;

fn main() {
    let fast = fast_flag();
    let cases = ["ispd18_5m", "ispd19_7m"];
    let lrs: Vec<f32> = if fast { vec![0.3] } else { vec![0.1, 0.3] };
    let seeds: Vec<u64> = if fast { vec![1] } else { vec![1, 2] };

    for name in cases {
        let case = catalog_case(name).expect("known case");
        let design = generate_case(case.config.clone(), fast).expect("generate");
        println!("Fig. 6 ({name}): weighted overflow vs 0.5*WL + 4*via");
        println!(
            "{:<10} {:>5} {:>5} | {:>14} {:>16}",
            "f", "lr", "seed", "0.5*WL+4*via", "weighted ovf"
        );

        let seq =
            run_baseline(&design, |d| SequentialRouter::default().route(d)).expect("sequential");
        println!(
            "{:<10} {:>5} {:>5} | {:>14.0} {:>16.0}   <- CUGR2-style reference",
            "cugr2",
            "-",
            "-",
            0.5 * seq.wirelength() as f64 + 4.0 * seq.vias() as f64,
            seq.weighted_overflow(),
        );

        for activation in Activation::ALL {
            for &lr in &lrs {
                for &seed in &seeds {
                    let mut cfg = dgr_config(fast, seed);
                    cfg.activation = activation;
                    cfg.learning_rate = lr;
                    let dgr = run_dgr(&design, cfg).expect("dgr route");
                    println!(
                        "{:<10} {:>5} {:>5} | {:>14.0} {:>16.0}",
                        activation.name(),
                        lr,
                        seed,
                        0.5 * dgr.wirelength() as f64 + 4.0 * dgr.vias() as f64,
                        dgr.weighted_overflow(),
                    );
                }
            }
        }
        println!();
    }
    println!("Expected shape: sigmoid points dominate (lowest weighted overflow at");
    println!("comparable WL/via); exp/ReLU runs scatter to higher overflow.");
}
