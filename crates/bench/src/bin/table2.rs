//! Table 2 — DGR vs the CUGR2-style sequential router on the most
//! congested 5-layer cases.
//!
//! Reports, per case and router: overflowed g-cell edges, total
//! wirelength, via count — the paper's three columns — plus runtimes and
//! the cross-case ratios (paper: 1.2391 / 1.0095 / 1.0128 in CUGR2's
//! favor of DGR).
//!
//! ```text
//! cargo run -p dgr-bench --release --bin table2 [--fast]
//! ```

use dgr_baseline::SequentialRouter;
use dgr_bench::{dgr_config, fast_flag, generate_case, ratio, run_baseline, run_dgr};
use dgr_io::congested_cases;

fn main() {
    let fast = fast_flag();
    println!("Table 2: comparison with the CUGR2-style router on congested 5-layer cases");
    println!(
        "{:<12} {:>7} | {:>9} {:>9} | {:>12} {:>12} | {:>10} {:>10} | {:>8} {:>8}",
        "case",
        "nets",
        "ovf CUGR2",
        "ovf DGR",
        "WL CUGR2",
        "WL DGR",
        "via CUGR2",
        "via DGR",
        "t CUGR2",
        "t DGR"
    );

    let mut sums = [0.0f64; 6]; // ovf, wl, via for each router
    for case in congested_cases() {
        let design = generate_case(case.config.clone(), fast).expect("generate case");
        let seq = run_baseline(&design, |d| SequentialRouter::default().route(d))
            .expect("sequential route");
        let dgr = run_dgr(&design, dgr_config(fast, 7)).expect("dgr route");

        println!(
            "{:<12} {:>7} | {:>9} {:>9} | {:>12} {:>12} | {:>10} {:>10} | {:>8.1} {:>8.1}",
            case.name,
            design.num_nets(),
            seq.overflow_edges(),
            dgr.overflow_edges(),
            seq.wirelength(),
            dgr.wirelength(),
            seq.vias(),
            dgr.vias(),
            seq.runtime.as_secs_f64(),
            dgr.runtime.as_secs_f64(),
        );
        sums[0] += seq.overflow_edges() as f64;
        sums[1] += dgr.overflow_edges() as f64;
        sums[2] += seq.wirelength() as f64;
        sums[3] += dgr.wirelength() as f64;
        sums[4] += seq.vias() as f64;
        sums[5] += dgr.vias() as f64;
    }

    println!(
        "\nRatios (CUGR2-style / DGR): overflow {:.4}, wirelength {:.4}, vias {:.4}",
        ratio(sums[0], sums[1]),
        ratio(sums[2], sums[3]),
        ratio(sums[4], sums[5]),
    );
    println!(
        "Paper reference ratios: 1.2391 / 1.0095 / 1.0128 — expect DGR ≤ baseline on overflow."
    );
}
