//! Micro-benchmark of the chunked 8-lane kernels against their scalar
//! references: SegSoftmax (forward + backward), Gather (forward +
//! scatter backward), and ScatterAdd, at several segment-size
//! distributions, reported as ns/element. Writes `BENCH_kernels.json`.
//!
//! Usage: `bench_kernels [--fast]`. Environment overrides:
//! `DGR_BENCH_ELEMS` (elements per layout, default 262144),
//! `DGR_BENCH_REPS` (timed repetitions, default 50), `DGR_BENCH_OUT`
//! (default `BENCH_kernels.json`).

use std::fmt::Write as _;
use std::time::Instant;

use dgr_autodiff::{set_kernel_mode, KernelMode, Segments};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// A segment layout: CSR offsets over `total` elements. The
/// distributions mirror what the router's forests produce — many small
/// groups, mixed sizes, a few huge groups — plus the adversarial
/// singleton/empty mix the proptests exercise.
struct Layout {
    name: &'static str,
    offsets: Vec<u32>,
}

fn layouts(total: usize, rng: &mut StdRng) -> Vec<Layout> {
    let mut make = |name: &'static str, mut next: Box<dyn FnMut(&mut StdRng) -> usize>| {
        let mut offsets = vec![0u32];
        let mut at = 0usize;
        while at < total {
            let len = next(rng).min(total - at);
            at += len;
            offsets.push(at as u32);
        }
        Layout { name, offsets }
    };
    vec![
        make("uniform_small", Box::new(|r| r.gen_range(2..8))),
        make("mixed", Box::new(|r| r.gen_range(1..64))),
        make("huge", Box::new(|_| 16_384)),
        make(
            "singleton_empty",
            Box::new(|r| if r.gen_bool(0.3) { 0 } else { 1 }),
        ),
    ]
}

/// Times `f` over `reps` repetitions and returns ns/element.
fn time_ns_per_elem(total: usize, reps: usize, mut f: impl FnMut()) -> f64 {
    f(); // warm-up
    let start = Instant::now();
    for _ in 0..reps {
        f();
    }
    start.elapsed().as_secs_f64() * 1e9 / (reps * total) as f64
}

struct KernelRow {
    kernel: &'static str,
    layout: &'static str,
    scalar_ns: f64,
    chunked_ns: f64,
}

fn bench_layout(layout: &Layout, reps: usize, rng: &mut StdRng) -> Vec<KernelRow> {
    let seg = Segments::from_offsets(layout.offsets.clone()).expect("valid CSR");
    let total = seg.len();
    let x: Vec<f32> = (0..total).map(|_| rng.gen_range(-4.0..4.0)).collect();
    let gout: Vec<f32> = (0..total).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let idx: Vec<u32> = (0..total)
        .map(|_| rng.gen_range(0..total.max(1)) as u32)
        .collect();
    let mut out = vec![0.0f32; total];
    let mut gx = vec![0.0f32; total];

    let mut rows = Vec::new();
    let per_mode = |f: &mut dyn FnMut()| -> (f64, f64) {
        set_kernel_mode(KernelMode::Scalar);
        let scalar = time_ns_per_elem(total, reps, &mut *f);
        set_kernel_mode(KernelMode::Chunked);
        let chunked = time_ns_per_elem(total, reps, f);
        (scalar, chunked)
    };

    // SegSoftmax forward: per-segment softmax into `out`.
    let (scalar_ns, chunked_ns) = per_mode(&mut || {
        for s in 0..seg.num_segments() {
            let r = seg.segment(s);
            dgr_autodiff::kernels::softmax_into(&x[r.clone()], &mut out[r]);
        }
    });
    rows.push(KernelRow {
        kernel: "seg_softmax_fwd",
        layout: layout.name,
        scalar_ns,
        chunked_ns,
    });

    // SegSoftmax backward: fused dot + weighted accumulate per segment.
    let (scalar_ns, chunked_ns) = per_mode(&mut || {
        gx.fill(0.0);
        for s in 0..seg.num_segments() {
            let r = seg.segment(s);
            dgr_autodiff::kernels::seg_softmax_bwd(&out[r.clone()], &gout[r.clone()], &mut gx[r]);
        }
    });
    rows.push(KernelRow {
        kernel: "seg_softmax_bwd",
        layout: layout.name,
        scalar_ns,
        chunked_ns,
    });

    // Gather forward + its scatter backward.
    let (scalar_ns, chunked_ns) = per_mode(&mut || {
        dgr_autodiff::kernels::gather_fwd(&mut out, &x, &idx);
    });
    rows.push(KernelRow {
        kernel: "gather_fwd",
        layout: layout.name,
        scalar_ns,
        chunked_ns,
    });
    let (scalar_ns, chunked_ns) = per_mode(&mut || {
        gx.fill(0.0);
        dgr_autodiff::kernels::scatter_bwd(&mut gx, &gout, &idx);
    });
    rows.push(KernelRow {
        kernel: "gather_bwd",
        layout: layout.name,
        scalar_ns,
        chunked_ns,
    });

    // ScatterAdd forward.
    let (scalar_ns, chunked_ns) = per_mode(&mut || {
        out.fill(0.0);
        dgr_autodiff::kernels::scatter_add(&mut out, &idx, &x);
    });
    rows.push(KernelRow {
        kernel: "scatter_add",
        layout: layout.name,
        scalar_ns,
        chunked_ns,
    });

    rows
}

fn main() {
    let fast = dgr_bench::fast_flag();
    let total = env_usize("DGR_BENCH_ELEMS", if fast { 65_536 } else { 262_144 });
    let reps = env_usize("DGR_BENCH_REPS", if fast { 20 } else { 50 });
    let out_path =
        std::env::var("DGR_BENCH_OUT").unwrap_or_else(|_| "BENCH_kernels.json".to_string());
    let mut rng = StdRng::seed_from_u64(7);

    println!("bench_kernels: {total} elements/layout, {reps} reps");
    let mut rows = Vec::new();
    for layout in layouts(total, &mut rng) {
        println!(
            "  layout {:<16} ({} segments)",
            layout.name,
            layout.offsets.len() - 1
        );
        for row in bench_layout(&layout, reps, &mut rng) {
            println!(
                "    {:<16} scalar {:7.3} ns/elem   chunked {:7.3} ns/elem   ({:.2}x)",
                row.kernel,
                row.scalar_ns,
                row.chunked_ns,
                row.scalar_ns / row.chunked_ns
            );
            rows.push(row);
        }
    }
    set_kernel_mode(KernelMode::Chunked);

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"elements\": {total},");
    let _ = writeln!(json, "  \"reps\": {reps},");
    let _ = writeln!(json, "  \"kernels\": [");
    for (i, row) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{ \"kernel\": \"{}\", \"layout\": \"{}\", \"scalar_ns_per_elem\": {:.4}, \"chunked_ns_per_elem\": {:.4}, \"speedup\": {:.3} }}{comma}",
            row.kernel, row.layout, row.scalar_ns, row.chunked_ns,
            row.scalar_ns / row.chunked_ns
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    std::fs::write(&out_path, json).expect("write benchmark report");
    println!("wrote {out_path}");
}
