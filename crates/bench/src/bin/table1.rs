//! Table 1 — DGR vs exact ILP on the synthetic protocol.
//!
//! For every parameter row: generate the design, solve with the
//! branch-and-bound ILP (time-limited) and with DGR in its ILP-comparison
//! profile (single tree, ReLU overflow, argmax read-out), over several
//! seeds plus a small hyper-parameter search (the paper's DGR*).
//!
//! ```text
//! cargo run -p dgr-bench --release --bin table1 [--fast]
//! ```

use std::time::{Duration, Instant};

use dgr_baseline::{IlpSolver, IlpStatus};
use dgr_core::{DgrConfig, DgrRouter};
use dgr_grid::Design;
use dgr_io::{table1_design, table1_rows};

fn dgr_overflow(design: &Design, seed: u64, lr: f32, decay: f32, iters: usize) -> f64 {
    let mut cfg = DgrConfig::ilp_comparison();
    cfg.seed = seed;
    cfg.learning_rate = lr;
    cfg.temperature_decay = decay;
    cfg.iterations = iters;
    let solution = DgrRouter::new(cfg).route(design).expect("routable design");
    // Table 1 counts pure ReLU wire overflow: demand − cap over wire only
    let grid = &design.grid;
    let mut wire = vec![0.0f32; grid.num_edges()];
    for route in &solution.routes {
        for path in &route.paths {
            for w in path.corners.windows(2) {
                let mut edges = Vec::new();
                grid.push_segment_edges(w[0], w[1], &mut edges)
                    .expect("in grid");
                for e in edges {
                    wire[e.index()] += 1.0;
                }
            }
        }
    }
    wire.iter()
        .zip(design.capacity.as_slice())
        .map(|(&d, &c)| ((d - c).max(0.0)) as f64)
        .sum()
}

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    let rows = table1_rows();
    let rows: Vec<_> = if fast { rows[..5].to_vec() } else { rows };
    let ilp_limit = if fast {
        Duration::from_secs(10)
    } else {
        Duration::from_secs(120)
    };

    println!("Table 1: comparison with ILP on synthetic data");
    println!(
        "{:>10} {:>6} {:>8} {:>5} | {:>9} {:>9} | {:>12} {:>12} {:>12} {:>12}",
        "grid",
        "cap",
        "nets",
        "box",
        "ILP t(s)",
        "DGR t(s)",
        "ILP ovf",
        "DGR* ovf",
        "DGR best",
        "DGR worst"
    );

    for params in rows {
        let design = table1_design(&params).expect("valid synthetic design");

        let ilp = IlpSolver::new(ilp_limit).solve(&design).expect("ilp solve");
        let (ilp_ovf, ilp_time) = match ilp.status {
            IlpStatus::Optimal => (
                format!("{:.0}", ilp.overflow),
                format!("{:.2}", ilp.runtime.as_secs_f64()),
            ),
            IlpStatus::TimedOut => ("N/A".to_owned(), "N/A".to_owned()),
        };

        // effort scales down with instance size: the single-CPU autodiff
        // substrate stands in for the paper's GPU (see EXPERIMENTS.md)
        let (iters, num_seeds, lrs, decays): (usize, u64, Vec<f32>, Vec<f32>) = if fast {
            (300, 5, vec![0.1, 0.5], vec![0.85])
        } else if params.nets >= 100_000 {
            (100, 2, vec![0.5], vec![0.85])
        } else if params.nets >= 10_000 {
            (300, 3, vec![0.1, 0.5], vec![0.85])
        } else {
            (1000, 5, vec![0.03, 0.1, 0.5, 1.0], vec![0.8, 0.85, 0.95])
        };

        // seeds → best/worst; DGR* = small hyper-parameter search
        let t0 = Instant::now();
        let seeds: Vec<f64> = (0..num_seeds)
            .map(|s| dgr_overflow(&design, s, 0.3, 0.9, iters))
            .collect();
        let dgr_time = t0.elapsed().as_secs_f64() / num_seeds as f64;
        let best = seeds.iter().copied().fold(f64::INFINITY, f64::min);
        let worst = seeds.iter().copied().fold(f64::NEG_INFINITY, f64::max);

        let mut star = best;
        for (k, &lr) in lrs.iter().enumerate() {
            for (j, &decay) in decays.iter().enumerate() {
                let o = dgr_overflow(&design, 100 + (k * 7 + j) as u64, lr, decay, iters);
                star = star.min(o);
            }
        }

        println!(
            "{:>10} {:>6} {:>8} {:>5} | {:>9} {:>9.2} | {:>12} {:>12.0} {:>12.0} {:>12.0}",
            format!("{0}x{0}", params.grid),
            params.cap,
            params.nets,
            params.box_size,
            ilp_time,
            dgr_time,
            ilp_ovf,
            star,
            best,
            worst
        );
    }
    println!();
    println!("Green criterion from the paper: DGR* should match ILP where ILP finishes;");
    println!("worst-seed gap should stay within a relative 1e-5 of the optimum.");
}
