//! Ablations of DGR's design choices (beyond the paper's tables).
//!
//! On one congested case, toggles one knob at a time against the default
//! configuration:
//!
//! * Gumbel noise off (plain softmax),
//! * temperature annealing off (constant temperature 1),
//! * argmax extraction instead of top-p,
//! * a single tree candidate per net,
//! * Z-shape path candidates on.
//!
//! ```text
//! cargo run -p dgr-bench --release --bin ablation [--fast]
//! ```

use dgr_bench::{dgr_config, fast_flag, generate_case, run_dgr};
use dgr_core::{DgrConfig, ExtractionMode};
use dgr_dag::PatternConfig;
use dgr_io::catalog_case;
use dgr_rsmt::CandidateConfig;

fn main() {
    let fast = fast_flag();
    let case = catalog_case("ispd18_5m").expect("known case");
    let design = generate_case(case.config.clone(), fast).expect("generate");

    let base = dgr_config(fast, 3);
    let variants: Vec<(&str, DgrConfig)> = vec![
        ("default", base.clone()),
        ("no-gumbel", {
            let mut c = base.clone();
            c.gumbel_noise = false;
            c
        }),
        ("no-anneal", {
            let mut c = base.clone();
            c.temperature_decay = 1.0;
            c
        }),
        ("argmax", {
            let mut c = base.clone();
            c.extraction = ExtractionMode::Argmax;
            c
        }),
        ("1-tree", {
            let mut c = base.clone();
            c.candidates = CandidateConfig::single();
            c
        }),
        ("5-trees", {
            let mut c = base.clone();
            c.candidates = CandidateConfig {
                max_candidates: 5,
                ..CandidateConfig::default()
            };
            c
        }),
        ("z-shapes", {
            let mut c = base.clone();
            c.patterns = PatternConfig::with_z(4);
            c
        }),
        ("z+c-shapes", {
            let mut c = base.clone();
            c.patterns = PatternConfig::with_z_and_c(4, 2);
            c
        }),
        ("adaptive", {
            let mut c = base.clone();
            c.adaptive_rounds = 2;
            c
        }),
        ("salt-trees", {
            let mut c = base.clone();
            c.candidates = CandidateConfig {
                max_candidates: 4,
                shallow_light: Some(0.5),
                ..CandidateConfig::default()
            };
            c
        }),
    ];

    println!(
        "Ablation study on {} ({} nets)",
        case.name,
        design.num_nets()
    );
    println!(
        "{:<10} | {:>9} {:>12} {:>9} | {:>16} {:>8}",
        "variant", "ovf edges", "wirelength", "vias", "weighted ovf", "t(s)"
    );
    for (name, cfg) in variants {
        let r = run_dgr(&design, cfg).expect("route");
        println!(
            "{:<10} | {:>9} {:>12} {:>9} | {:>16.0} {:>8.1}",
            name,
            r.overflow_edges(),
            r.wirelength(),
            r.vias(),
            r.weighted_overflow(),
            r.runtime.as_secs_f64(),
        );
    }
    println!();
    println!("Expected: default ≤ single-knob ablations on weighted overflow;");
    println!("z-shapes/5-trees trade runtime for marginal quality.");
}
