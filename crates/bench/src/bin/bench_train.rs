//! Training-throughput benchmark: measures iterations/second of the
//! persistent-pool executor against the legacy spawn-per-op executor on
//! the same cost model, and writes `BENCH_train.json`.
//!
//! Usage: `bench_train [--fast]`. Environment overrides:
//! `DGR_BENCH_NETS` (default 4000), `DGR_BENCH_ITERS` (default 100),
//! `DGR_BENCH_THREADS` (default: machine parallelism), `DGR_BENCH_BATCH`
//! (batched-training instance count, default 4),
//! `DGR_BENCH_BATCH_REPS` (best-of-N repetitions for the batch
//! comparison, default 3), `DGR_BENCH_OUT` (default `BENCH_train.json`).

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use dgr_autodiff::parallel::{self, ExecMode};
use dgr_autodiff::Adam;
use dgr_core::{
    build_cost_model, build_cost_model_batched, extract_solution, train, train_batched, DgrConfig,
};
use dgr_io::{IspdLikeConfig, IspdLikeGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Measurement {
    iters_per_sec: f64,
    forward_ms: f64,
    backward_ms: f64,
    graph_bytes: usize,
}

/// Per-phase mean milliseconds sourced from the `dgr-obs` span registry
/// (the pool run records `forward`/`backward`/`adam` spans per iteration
/// plus one `extract` span).
struct Phases {
    forward_ms: f64,
    backward_ms: f64,
    adam_ms: f64,
    extract_ms: f64,
}

fn phases_from_spans() -> Phases {
    let mean_ms = |name: &str| {
        dgr_obs::span_totals()
            .iter()
            .find(|t| t.name == name)
            .map(|t| t.mean().as_secs_f64() * 1e3)
            .unwrap_or(0.0)
    };
    Phases {
        forward_ms: mean_ms("forward"),
        backward_ms: mean_ms("backward"),
        adam_ms: mean_ms("adam"),
        extract_ms: mean_ms("extract"),
    }
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Batched multi-seed amortization: end-to-end wall-clock of one
/// `dgr train`-shaped run (candidate trees → DAG forest → tape build →
/// training) versus one `dgr train --batch N` run over `batch` seeds.
/// Running N single-seed searches pays the whole front end N times;
/// the batched run builds everything once and walks one fused tape, so
/// `amortization` (single × batch / batch_wall) exceeds 1 whenever that
/// sharing beats `batch` separate runs. `train_ms` fields isolate the
/// training-loop portion of each wall time.
struct BatchMeasurement {
    batch: usize,
    single_wall_ms: f64,
    single_train_ms: f64,
    batch_wall_ms: f64,
    batch_train_ms: f64,
    per_instance_ms: f64,
    amortization: f64,
}

fn measure_batch(design: &dgr_grid::Design, cfg: &DgrConfig, batch: usize) -> BatchMeasurement {
    // (wall_ms, train_ms) of the full single-seed path, as `dgr train`
    // runs it.
    let single = || {
        let start = Instant::now();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let pools: Vec<_> = design
            .nets
            .iter()
            .map(|n| dgr_rsmt::tree_candidates(&n.pins, &cfg.candidates).expect("pins"))
            .collect();
        let forest = dgr_dag::build_forest(&design.grid, &pools, cfg.patterns).expect("in grid");
        let mut model = build_cost_model(design, &forest, cfg, &mut rng);
        let report = train(&mut model, cfg, &mut rng);
        (
            start.elapsed().as_secs_f64() * 1e3,
            report.duration.as_secs_f64() * 1e3,
        )
    };
    // Same shape through the batched path, as `dgr train --batch N`
    // runs it: the front end and tape build happen once for all seeds.
    let batched = |seeds: &[u64]| {
        let start = Instant::now();
        let pools: Vec<_> = design
            .nets
            .iter()
            .map(|n| dgr_rsmt::tree_candidates(&n.pins, &cfg.candidates).expect("pins"))
            .collect();
        let forest = dgr_dag::build_forest(&design.grid, &pools, cfg.patterns).expect("in grid");
        let (mut model, mut rngs) = build_cost_model_batched(design, &forest, cfg, seeds);
        let reports = train_batched(&mut model, cfg, &mut rngs);
        (
            start.elapsed().as_secs_f64() * 1e3,
            reports[0].duration.as_secs_f64() * 1e3,
        )
    };
    // Best-of-N: wall-clock on a shared host is noisy at this scale, and
    // the minimum is the standard estimator of the true cost.
    let reps = env_usize("DGR_BENCH_BATCH_REPS", 3).max(1);
    let best = |f: &dyn Fn() -> (f64, f64)| {
        (0..reps)
            .map(|_| f())
            .min_by(|a, b| a.0.total_cmp(&b.0))
            .expect("at least one rep")
    };
    let (single_wall_ms, single_train_ms) = best(&single);
    let seeds: Vec<u64> = (0..batch as u64).map(|b| cfg.seed + b).collect();
    let (batch_wall_ms, batch_train_ms) = best(&|| batched(&seeds));
    BatchMeasurement {
        batch,
        single_wall_ms,
        single_train_ms,
        batch_wall_ms,
        batch_train_ms,
        per_instance_ms: batch_wall_ms / batch as f64,
        amortization: single_wall_ms * batch as f64 / batch_wall_ms,
    }
}

fn measure(
    design: &dgr_grid::Design,
    cfg: &DgrConfig,
    iters: usize,
    mode: ExecMode,
) -> Measurement {
    parallel::set_exec_mode(mode);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let pools: Vec<_> = design
        .nets
        .iter()
        .map(|n| dgr_rsmt::tree_candidates(&n.pins, &cfg.candidates).expect("pins"))
        .collect();
    let forest = dgr_dag::build_forest(&design.grid, &pools, cfg.patterns).expect("in grid");
    let mut model = build_cost_model(design, &forest, cfg, &mut rng);
    let mut adam = Adam::new(&model.graph, cfg.learning_rate);
    // Warm up: first dispatch spawns the pool's worker threads.
    model.graph.forward();
    model.graph.backward(model.loss);
    let mut forward = Duration::ZERO;
    let mut backward = Duration::ZERO;
    let start = Instant::now();
    for _ in 0..iters {
        let t = Instant::now();
        {
            let _s = dgr_obs::span("train", "forward");
            model.graph.forward();
        }
        forward += t.elapsed();
        let t = Instant::now();
        {
            let _s = dgr_obs::span("train", "backward");
            model.graph.backward(model.loss);
        }
        backward += t.elapsed();
        let _s = dgr_obs::span("train", "adam");
        adam.step(&mut model.graph);
    }
    let total = start.elapsed();
    // One extraction so the phase table covers the full route pipeline
    // (extract_solution records its own `extract` span).
    extract_solution(design, &forest, &mut model, cfg).expect("extract");
    parallel::set_exec_mode(ExecMode::Pool);
    Measurement {
        iters_per_sec: iters as f64 / total.as_secs_f64(),
        forward_ms: forward.as_secs_f64() * 1e3 / iters as f64,
        backward_ms: backward.as_secs_f64() * 1e3 / iters as f64,
        graph_bytes: model.graph.bytes(),
    }
}

fn main() {
    let fast = dgr_bench::fast_flag();
    let nets = env_usize("DGR_BENCH_NETS", if fast { 1000 } else { 4000 });
    let iters = env_usize("DGR_BENCH_ITERS", if fast { 30 } else { 100 });
    let out_path =
        std::env::var("DGR_BENCH_OUT").unwrap_or_else(|_| "BENCH_train.json".to_string());
    let side = ((nets as f64).sqrt() * 1.5).round() as u32;
    let design = IspdLikeGenerator::new(IspdLikeConfig {
        width: side.max(32),
        height: side.max(32),
        num_nets: nets,
        ..IspdLikeConfig::default()
    })
    .generate()
    .expect("valid config");
    let cfg = DgrConfig::default();
    if let Some(t) = std::env::var("DGR_BENCH_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
    {
        parallel::set_num_threads(t);
    }
    let threads = parallel::num_threads();
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let oversubscribed = threads > host_cpus;
    if oversubscribed {
        eprintln!(
            "bench_train: WARNING: {threads} worker threads on {host_cpus} host cpu(s) — \
             oversubscribed, timings measure scheduling overhead as well as work"
        );
    }

    println!("bench_train: {nets} nets, {iters} iters, {threads} threads ({host_cpus} host cpus)");
    let swap = std::env::var_os("DGR_BENCH_ORDER").is_some_and(|v| v == "swap");
    let mut spawn_first = None;
    if swap {
        spawn_first = Some(measure(&design, &cfg, iters, ExecMode::Spawn));
    }
    // Span-source the per-phase breakdown from the pool run only; the
    // spawn baseline measures with observability off, as before.
    dgr_obs::reset();
    dgr_obs::set_enabled(true);
    let pool = measure(&design, &cfg, iters, ExecMode::Pool);
    dgr_obs::set_enabled(false);
    let phases = phases_from_spans();
    println!(
        "  pool  executor: {:8.2} iters/s  (fwd {:.3} ms, bwd {:.3} ms)",
        pool.iters_per_sec, pool.forward_ms, pool.backward_ms
    );
    println!(
        "  phase means   : fwd {:.3} ms, bwd {:.3} ms, adam {:.3} ms, extract {:.3} ms",
        phases.forward_ms, phases.backward_ms, phases.adam_ms, phases.extract_ms
    );
    let spawn = spawn_first.unwrap_or_else(|| measure(&design, &cfg, iters, ExecMode::Spawn));
    println!(
        "  spawn executor: {:8.2} iters/s  (fwd {:.3} ms, bwd {:.3} ms)",
        spawn.iters_per_sec, spawn.forward_ms, spawn.backward_ms
    );
    let speedup = pool.iters_per_sec / spawn.iters_per_sec;
    println!(
        "  speedup: {speedup:.2}x  graph: {} bytes",
        pool.graph_bytes
    );

    let batch_size = env_usize("DGR_BENCH_BATCH", 4);
    let batch_cfg = DgrConfig {
        iterations: iters,
        ..cfg.clone()
    };
    let batch = measure_batch(&design, &batch_cfg, batch_size);
    println!(
        "  batched [{}x]  : single {:.1} ms (train {:.1}), batch {:.1} ms (train {:.1}) \
         — {:.1} ms/instance, {:.2}x amortization",
        batch.batch,
        batch.single_wall_ms,
        batch.single_train_ms,
        batch.batch_wall_ms,
        batch.batch_train_ms,
        batch.per_instance_ms,
        batch.amortization
    );

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"iters_per_sec\": {:.3},", pool.iters_per_sec);
    let _ = writeln!(json, "  \"forward_ms\": {:.4},", pool.forward_ms);
    let _ = writeln!(json, "  \"backward_ms\": {:.4},", pool.backward_ms);
    let _ = writeln!(json, "  \"graph_bytes\": {},", pool.graph_bytes);
    let _ = writeln!(json, "  \"threads\": {threads},");
    let _ = writeln!(json, "  \"host_cpus\": {host_cpus},");
    let _ = writeln!(json, "  \"oversubscribed\": {oversubscribed},");
    let _ = writeln!(json, "  \"nets\": {nets},");
    let _ = writeln!(json, "  \"iterations\": {iters},");
    let _ = writeln!(
        json,
        "  \"phases\": {{ \"forward_ms\": {:.4}, \"backward_ms\": {:.4}, \"adam_ms\": {:.4}, \"extract_ms\": {:.4} }},",
        phases.forward_ms, phases.backward_ms, phases.adam_ms, phases.extract_ms
    );
    let _ = writeln!(
        json,
        "  \"baseline_spawn\": {{ \"iters_per_sec\": {:.3}, \"forward_ms\": {:.4}, \"backward_ms\": {:.4} }},",
        spawn.iters_per_sec, spawn.forward_ms, spawn.backward_ms
    );
    let _ = writeln!(json, "  \"speedup_vs_spawn\": {speedup:.3},");
    let _ = writeln!(
        json,
        "  \"batch\": {{ \"batch\": {}, \"single_wall_ms\": {:.2}, \"single_train_ms\": {:.2}, \"batch_wall_ms\": {:.2}, \"batch_train_ms\": {:.2}, \"per_instance_ms\": {:.2}, \"amortization\": {:.3} }}",
        batch.batch, batch.single_wall_ms, batch.single_train_ms, batch.batch_wall_ms,
        batch.batch_train_ms, batch.per_instance_ms, batch.amortization
    );
    let _ = writeln!(json, "}}");
    std::fs::write(&out_path, json).expect("write benchmark report");
    println!("wrote {out_path}");
}
