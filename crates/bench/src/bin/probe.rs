//! Calibration probe: reports the congestion regime of every catalog
//! case under the sequential baseline so capacities can be tuned to the
//! paper's "barely infeasible" sweet spot. Not part of any table.
//!
//! ```text
//! cargo run -p dgr-bench --release --bin probe [--fast]
//! ```

use dgr_baseline::SequentialRouter;
use dgr_bench::{fast_flag, generate_case, run_baseline};
use dgr_io::{congested_cases, ispd18_cases};

fn main() {
    let fast = fast_flag();
    println!(
        "{:<14} {:>7} {:>9} | {:>9} {:>12} {:>8} | {:>10} {:>10}",
        "case", "nets", "edges", "ovf edges", "total ovf", "peak", "WL", "t(s)"
    );
    for case in congested_cases().into_iter().chain(ispd18_cases()) {
        let design = generate_case(case.config.clone(), fast).expect("generate");
        let r = run_baseline(&design, |d| SequentialRouter::default().route(d)).expect("route");
        let m = &r.solution.metrics;
        println!(
            "{:<14} {:>7} {:>9} | {:>9} {:>12.1} {:>8.2} | {:>10} {:>10.1}",
            case.name,
            design.num_nets(),
            design.grid.num_edges(),
            m.overflow.overflowed_edges,
            m.overflow.total_overflow,
            m.overflow.peak_overflow,
            m.total_wirelength,
            r.runtime.as_secs_f64(),
        );
    }
}
