//! End-to-end `route` pipeline benchmark: wall-clock of the full
//! candidates → forest → relax/train → extract pipeline with the
//! parallel front end and canonical Steiner cache, against the serial
//! uncached path, and writes `BENCH_pipeline.json`.
//!
//! Usage: `bench_pipeline [--fast]`. Environment overrides:
//! `DGR_BENCH_NETS` (default 4000), `DGR_BENCH_ITERS` (default 60),
//! `DGR_BENCH_THREADS` (default 4), `DGR_BENCH_RUNS` (best-of, default
//! 2), `DGR_BENCH_OUT` (default `BENCH_pipeline.json`).
//!
//! Output schema (`BENCH_pipeline.json`): `nets`/`iterations`/`threads`
//! echo the workload; `route_wall_ms` (parallel+cached, the gated
//! number) and `serial_wall_ms` are best-of-N wall clocks;
//! `candidates_ms`/`forest_ms`/`relax_ms`/`extract_ms` are per-phase
//! span totals from the kept run; `cache_hits`/`cache_misses` are the
//! `rsmt.cache.hits`/`rsmt.cache.misses` counters of the canonical
//! Steiner-template cache, and `cache_hit_rate` is
//! `hits / (hits + misses)` (0 when no lookups). The same counters feed
//! the `dgr` end-of-run summary table and every ledger record, so a low
//! rate is visible without opening this file.

use std::fmt::Write as _;
use std::time::Instant;

use dgr_autodiff::parallel;
use dgr_core::{DgrConfig, DgrRouter};
use dgr_io::{IspdLikeConfig, IspdLikeGenerator};

/// Per-phase total milliseconds for one `route` call, sourced from the
/// `dgr-obs` span registry (`route` category spans).
struct Phases {
    candidates_ms: f64,
    forest_ms: f64,
    relax_ms: f64,
    extract_ms: f64,
}

fn phases_from_spans() -> Phases {
    let total_ms = |name: &str| {
        dgr_obs::span_totals()
            .iter()
            .find(|t| t.name == name)
            .map(|t| t.total.as_secs_f64() * 1e3)
            .unwrap_or(0.0)
    };
    Phases {
        candidates_ms: total_ms("candidates"),
        forest_ms: total_ms("forest"),
        relax_ms: total_ms("relax"),
        extract_ms: total_ms("extract"),
    }
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

struct Measurement {
    wall_ms: f64,
    phases: Phases,
    cache_hits: u64,
    cache_misses: u64,
}

impl Measurement {
    fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// Routes `design` `runs` times and keeps the fastest run (standard
/// bench practice: the minimum is the least-noise estimate on a shared
/// host). Spans and cache counters come from the kept run.
fn measure_best(
    design: &dgr_grid::Design,
    cfg: &DgrConfig,
    threads: usize,
    runs: usize,
) -> Measurement {
    let mut best: Option<Measurement> = None;
    for _ in 0..runs.max(1) {
        let m = measure(design, cfg, threads);
        if best.as_ref().is_none_or(|b| m.wall_ms < b.wall_ms) {
            best = Some(m);
        }
    }
    best.expect("at least one run")
}

/// Routes `design` once and reports wall-clock, per-phase span totals,
/// and canonical-cache traffic. Observability is enabled only for the
/// duration of the call so counters and spans cover exactly one run.
fn measure(design: &dgr_grid::Design, cfg: &DgrConfig, threads: usize) -> Measurement {
    parallel::set_num_threads(threads);
    dgr_obs::reset();
    dgr_obs::set_enabled(true);
    let start = Instant::now();
    let solution = DgrRouter::new(cfg.clone()).route(design).expect("route");
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    dgr_obs::set_enabled(false);
    assert_eq!(solution.routes.len(), design.num_nets());
    Measurement {
        wall_ms,
        phases: phases_from_spans(),
        cache_hits: dgr_obs::counter("rsmt.cache.hits").get(),
        cache_misses: dgr_obs::counter("rsmt.cache.misses").get(),
    }
}

fn phase_json(p: &Phases) -> String {
    format!(
        "{{ \"candidates_ms\": {:.4}, \"forest_ms\": {:.4}, \"relax_ms\": {:.4}, \"extract_ms\": {:.4} }}",
        p.candidates_ms, p.forest_ms, p.relax_ms, p.extract_ms
    )
}

fn main() {
    let fast = dgr_bench::fast_flag();
    let nets = env_usize("DGR_BENCH_NETS", if fast { 1000 } else { 4000 });
    let iters = env_usize("DGR_BENCH_ITERS", if fast { 20 } else { 60 });
    let threads = env_usize("DGR_BENCH_THREADS", 4);
    let runs = env_usize("DGR_BENCH_RUNS", 2);
    let out_path =
        std::env::var("DGR_BENCH_OUT").unwrap_or_else(|_| "BENCH_pipeline.json".to_string());
    let side = ((nets as f64).sqrt() * 1.5).round() as u32;
    let design = IspdLikeGenerator::new(IspdLikeConfig {
        width: side.max(32),
        height: side.max(32),
        num_nets: nets,
        ..IspdLikeConfig::default()
    })
    .generate()
    .expect("valid config");
    let cfg = DgrConfig {
        iterations: iters,
        ..DgrConfig::default()
    };
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let oversubscribed = threads > host_cpus;
    if oversubscribed {
        eprintln!(
            "bench_pipeline: WARNING: {threads} worker threads on {host_cpus} host cpu(s) — \
             oversubscribed, timings measure scheduling overhead as well as work"
        );
    }

    println!(
        "bench_pipeline: {nets} nets, {iters} iters, {threads} threads ({host_cpus} host cpus)"
    );

    // Untimed warm-up: spawns the worker pool and touches every lazy
    // allocation so neither measured run pays one-time init costs.
    {
        let warm_cfg = DgrConfig {
            iterations: 2,
            ..cfg.clone()
        };
        parallel::set_num_threads(threads);
        DgrRouter::new(warm_cfg).route(&design).expect("route");
    }

    // Serial seed path: one thread, canonical cache off — the pipeline
    // exactly as it ran before the parallel front end existed.
    let serial_cfg = DgrConfig {
        use_rsmt_cache: false,
        ..cfg.clone()
    };
    let serial = measure_best(&design, &serial_cfg, 1, runs);
    println!(
        "  serial   (1 thread, cache off): {:9.1} ms  (cand {:.1}, forest {:.1}, relax {:.1}, extract {:.1})",
        serial.wall_ms,
        serial.phases.candidates_ms,
        serial.phases.forest_ms,
        serial.phases.relax_ms,
        serial.phases.extract_ms
    );

    let par = measure_best(&design, &cfg, threads, runs);
    let speedup = serial.wall_ms / par.wall_ms;
    println!(
        "  parallel ({threads} threads, cache on): {:9.1} ms  (cand {:.1}, forest {:.1}, relax {:.1}, extract {:.1})",
        par.wall_ms,
        par.phases.candidates_ms,
        par.phases.forest_ms,
        par.phases.relax_ms,
        par.phases.extract_ms
    );
    println!(
        "  speedup: {speedup:.2}x  cache: {} hits / {} misses ({:.1}% hit rate)",
        par.cache_hits,
        par.cache_misses,
        par.hit_rate() * 100.0
    );

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"nets\": {nets},");
    let _ = writeln!(json, "  \"iterations\": {iters},");
    let _ = writeln!(json, "  \"threads\": {threads},");
    let _ = writeln!(json, "  \"host_cpus\": {host_cpus},");
    let _ = writeln!(json, "  \"oversubscribed\": {oversubscribed},");
    let _ = writeln!(json, "  \"route_wall_ms\": {:.2},", par.wall_ms);
    let _ = writeln!(json, "  \"serial_wall_ms\": {:.2},", serial.wall_ms);
    let _ = writeln!(json, "  \"speedup_vs_serial\": {speedup:.3},");
    let _ = writeln!(json, "  \"cache_hits\": {},", par.cache_hits);
    let _ = writeln!(json, "  \"cache_misses\": {},", par.cache_misses);
    let _ = writeln!(json, "  \"cache_hit_rate\": {:.4},", par.hit_rate());
    let _ = writeln!(json, "  \"phases\": {},", phase_json(&par.phases));
    let _ = writeln!(json, "  \"serial_phases\": {}", phase_json(&serial.phases));
    let _ = writeln!(json, "}}");
    std::fs::write(&out_path, json).expect("write benchmark report");
    println!("wrote {out_path}");
}
