//! Variant tuner: compares DGR configuration variants against the
//! sequential baseline on one congested case. Calibration tool, not a
//! paper artifact.
//!
//! ```text
//! cargo run -p dgr-bench --release --bin tune [--fast] [case]
//! ```

use dgr_baseline::SequentialRouter;
use dgr_bench::{dgr_config, fast_flag, generate_case, run_baseline, run_dgr};
use dgr_io::catalog_case;
use dgr_rsmt::CandidateConfig;

fn main() {
    let fast = fast_flag();
    let name = std::env::args()
        .skip(1)
        .find(|a| !a.starts_with("--"))
        .unwrap_or_else(|| "ispd19_7m".to_owned());
    let case = catalog_case(&name).expect("known case");
    let design = generate_case(case.config.clone(), fast).expect("generate");

    let seq = run_baseline(&design, |d| SequentialRouter::default().route(d)).expect("seq");
    println!(
        "{:<22} | {:>9} {:>12} {:>9} {:>8}",
        "variant", "ovf", "WL", "vias", "t(s)"
    );
    println!(
        "{:<22} | {:>9} {:>12} {:>9} {:>8.1}",
        "sequential",
        seq.overflow_edges(),
        seq.wirelength(),
        seq.vias(),
        seq.runtime.as_secs_f64()
    );

    let base = dgr_config(fast, 7);
    let variants: Vec<(String, dgr_core::DgrConfig)> = vec![
        ("default".into(), base.clone()),
        ("scale2".into(), {
            let mut c = base.clone();
            c.overflow_scale = 2.0;
            c
        }),
        ("scale4".into(), {
            let mut c = base.clone();
            c.overflow_scale = 4.0;
            c
        }),
        ("1tree".into(), {
            let mut c = base.clone();
            c.candidates = CandidateConfig::single();
            c
        }),
        ("1tree+scale4".into(), {
            let mut c = base.clone();
            c.candidates = CandidateConfig::single();
            c.overflow_scale = 4.0;
            c
        }),
        ("scale4+lr0.1".into(), {
            let mut c = base.clone();
            c.overflow_scale = 4.0;
            c.learning_rate = 0.1;
            c
        }),
        ("scale4+topp0.99".into(), {
            let mut c = base.clone();
            c.overflow_scale = 4.0;
            c.extraction = dgr_core::ExtractionMode::TopP { threshold: 0.99 };
            c
        }),
    ];
    for (name, cfg) in variants {
        let r = run_dgr(&design, cfg).expect("dgr");
        println!(
            "{:<22} | {:>9} {:>12} {:>9} {:>8.1}",
            name,
            r.overflow_edges(),
            r.wirelength(),
            r.vias(),
            r.runtime.as_secs_f64()
        );
    }
}
