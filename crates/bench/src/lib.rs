//! Shared experiment-harness utilities for the table/figure binaries.
//!
//! Each paper table or figure has a dedicated binary in `src/bin/`:
//!
//! | binary    | reproduces | contents |
//! |-----------|-----------|----------|
//! | `table1`  | Table 1   | DGR vs exact ILP on the synthetic protocol |
//! | `table2`  | Table 2   | DGR vs the CUGR2-style router on congested 5-layer cases |
//! | `table3`  | Table 3   | DGR vs SPRoute-style and Lagrangian routers on ispd18 cases |
//! | `fig5`    | Fig. 5a/b | runtime and memory vs net count |
//! | `fig6`    | Fig. 6    | overflow-activation study |
//! | `ablation`| (extra)   | Gumbel / annealing / top-p / candidate-count ablations |
//!
//! Every binary accepts `--fast` (shrunk workloads for smoke runs) and
//! prints the paper-style rows to stdout.

use std::time::{Duration, Instant};

use dgr_core::{DgrConfig, DgrRouter, RoutingSolution};

pub mod harness;
use dgr_grid::Design;
use dgr_io::{IspdLikeConfig, IspdLikeGenerator};
use dgr_post::{assign_layers, refine, AssignConfig, Assigned3d, RefineConfig};

/// A routed case with post-processing applied: the quantities every table
/// reports.
#[derive(Debug)]
pub struct PipelineResult {
    /// The refined 2D solution.
    pub solution: RoutingSolution,
    /// The layer assignment (vias, 3D overflow, n₁).
    pub assigned: Assigned3d,
    /// Wall-clock routing time (excl. generation, incl. training).
    pub runtime: Duration,
}

impl PipelineResult {
    /// Overflowed g-cell edges of the 2D solution (the paper's
    /// "# G-cell edges w/ overflow" column, CUGR2 metric).
    pub fn overflow_edges(&self) -> usize {
        self.solution.metrics.overflow.overflowed_edges
    }

    /// Total wirelength (edge units).
    pub fn wirelength(&self) -> u64 {
        self.solution.metrics.total_wirelength
    }

    /// Via count after layer assignment.
    pub fn vias(&self) -> u64 {
        self.assigned.total_vias
    }

    /// The Fig. 6 weighted overflow
    /// `10·n₁ + 1000·n₂ + 10000·peak`.
    pub fn weighted_overflow(&self) -> f64 {
        10.0 * self.assigned.overflowed_nets as f64
            + 1000.0 * self.overflow_edges() as f64
            + 10_000.0 * self.solution.metrics.overflow.peak_overflow as f64
    }
}

/// Runs the full DGR pipeline (route → refine → layer-assign).
///
/// # Errors
///
/// Returns a boxed error if any stage fails.
pub fn run_dgr(
    design: &Design,
    config: DgrConfig,
) -> Result<PipelineResult, Box<dyn std::error::Error>> {
    let start = Instant::now();
    let mut solution = DgrRouter::new(config).route(design)?;
    refine(design, &mut solution, RefineConfig::default())?;
    let runtime = start.elapsed();
    let assigned = assign_layers(design, &solution, assign_cfg(design))?;
    Ok(PipelineResult {
        solution,
        assigned,
        runtime,
    })
}

/// Runs a baseline router closure through the same refinement and layer
/// assignment as DGR, so every column is measured identically.
///
/// # Errors
///
/// Returns a boxed error if any stage fails.
pub fn run_baseline<F>(
    design: &Design,
    route: F,
) -> Result<PipelineResult, Box<dyn std::error::Error>>
where
    F: FnOnce(&Design) -> Result<RoutingSolution, dgr_baseline::BaselineError>,
{
    let start = Instant::now();
    let mut solution = route(design)?;
    refine(design, &mut solution, RefineConfig::default())?;
    let runtime = start.elapsed();
    let assigned = assign_layers(design, &solution, assign_cfg(design))?;
    Ok(PipelineResult {
        solution,
        assigned,
        runtime,
    })
}

fn assign_cfg(design: &Design) -> AssignConfig {
    let _ = design;
    AssignConfig::default()
}

/// Generates a catalog case, optionally shrunk by `--fast`.
pub fn generate_case(
    mut config: IspdLikeConfig,
    fast: bool,
) -> Result<Design, Box<dyn std::error::Error>> {
    if fast {
        // shrink nets ×4 and area ×4 together: net density, cluster density
        // and relative cluster spread — hence the congestion regime — are
        // all preserved
        let f = 4.0f64;
        config.num_nets = ((config.num_nets as f64 / f) as usize).max(50);
        config.width = ((config.width as f64 / f.sqrt()).round() as u32).max(20);
        config.height = ((config.height as f64 / f.sqrt()).round() as u32).max(20);
        config.cluster_spread /= f.sqrt();
        config.clusters = ((config.clusters as f64 / f).round() as usize).max(3);
    }
    Ok(IspdLikeGenerator::new(config).generate()?)
}

/// Whether `--fast` was passed on the command line.
pub fn fast_flag() -> bool {
    std::env::args().any(|a| a == "--fast")
}

/// A DGR config sized for the experiment scale: the paper's 1000
/// iterations for full runs, 200 for `--fast`. The `DGR_ITERS`
/// environment variable overrides both (calibration escape hatch).
pub fn dgr_config(fast: bool, seed: u64) -> DgrConfig {
    DgrConfig {
        iterations: std::env::var("DGR_ITERS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(if fast { 200 } else { 1000 }),
        seed,
        ..DgrConfig::default()
    }
}

/// Formats a ratio row: `other / base` guarded against zero.
pub fn ratio(other: f64, base: f64) -> f64 {
    if base == 0.0 {
        if other == 0.0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        other / base
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgr_baseline::SequentialRouter;

    #[test]
    fn pipeline_runs_end_to_end_on_a_small_case() {
        let design = generate_case(
            IspdLikeConfig {
                num_nets: 60,
                width: 32,
                height: 32,
                ..IspdLikeConfig::default()
            },
            false,
        )
        .unwrap();
        let mut cfg = dgr_config(true, 0);
        cfg.iterations = 60;
        let dgr = run_dgr(&design, cfg).unwrap();
        let seq = run_baseline(&design, |d| SequentialRouter::default().route(d)).unwrap();
        assert!(dgr.wirelength() > 0);
        assert!(seq.wirelength() > 0);
        assert!(dgr.vias() > 0);
        assert!(dgr.runtime > Duration::ZERO);
    }

    #[test]
    fn ratio_guards_zero() {
        assert_eq!(ratio(0.0, 0.0), 1.0);
        assert_eq!(ratio(5.0, 0.0), f64::INFINITY);
        assert_eq!(ratio(6.0, 3.0), 2.0);
    }

    #[test]
    fn fast_scaling_preserves_densities() {
        let base = IspdLikeConfig {
            width: 120,
            height: 120,
            num_nets: 8000,
            clusters: 100,
            cluster_spread: 12.0,
            ..IspdLikeConfig::default()
        };
        let full = generate_case(base.clone(), false).unwrap();
        let fast_cfg = {
            // re-derive the shrunk config to compare densities
            let mut c = base.clone();
            let f = 4.0f64;
            c.num_nets = ((c.num_nets as f64 / f) as usize).max(50);
            c.width = ((c.width as f64 / f.sqrt()).round() as u32).max(20);
            c.height = ((c.height as f64 / f.sqrt()).round() as u32).max(20);
            c
        };
        let fast = generate_case(base, true).unwrap();
        assert_eq!(fast.num_nets(), fast_cfg.num_nets);
        let density =
            |d: &Design| d.num_nets() as f64 / (d.grid.width() as f64 * d.grid.height() as f64);
        let rel = (density(&fast) - density(&full)).abs() / density(&full);
        assert!(rel < 0.1, "net density drifted {rel:.3} under --fast");
    }
}
