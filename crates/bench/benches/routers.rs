//! Criterion end-to-end benchmarks: one DGR training iteration and the
//! full routing pipelines on a small catalog case.

use criterion::{criterion_group, criterion_main, Criterion};
use dgr_autodiff::Adam;
use dgr_baseline::{LagrangianRouter, SequentialRouter, SprouteRouter};
use dgr_core::{build_cost_model, DgrConfig, DgrRouter};
use dgr_io::{IspdLikeConfig, IspdLikeGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_design() -> dgr_grid::Design {
    IspdLikeGenerator::new(IspdLikeConfig {
        width: 48,
        height: 48,
        num_nets: 500,
        ..IspdLikeConfig::default()
    })
    .generate()
    .expect("valid config")
}

fn bench_train_iteration(c: &mut Criterion) {
    let design = small_design();
    let cfg = DgrConfig::default();
    let mut rng = StdRng::seed_from_u64(0);
    let pools: Vec<_> = design
        .nets
        .iter()
        .map(|n| dgr_rsmt::tree_candidates(&n.pins, &cfg.candidates).expect("pins"))
        .collect();
    let forest = dgr_dag::build_forest(&design.grid, &pools, cfg.patterns).expect("in grid");
    let mut model = build_cost_model(&design, &forest, &cfg, &mut rng);
    let mut adam = Adam::new(&model.graph, cfg.learning_rate);
    c.bench_function("dgr_train_iteration_500_nets", |b| {
        b.iter(|| {
            model.graph.forward();
            model.graph.backward(model.loss);
            adam.step(&mut model.graph);
        })
    });
}

fn bench_full_routers(c: &mut Criterion) {
    let design = small_design();
    let mut group = c.benchmark_group("full_route_500_nets");
    group.sample_size(10);
    group.bench_function("dgr_100_iters", |b| {
        b.iter(|| {
            let mut cfg = DgrConfig::default();
            cfg.iterations = 100;
            DgrRouter::new(cfg).route(&design).expect("routable")
        })
    });
    group.bench_function("sequential", |b| {
        b.iter(|| {
            SequentialRouter::default()
                .route(&design)
                .expect("routable")
        })
    });
    group.bench_function("sproute", |b| {
        b.iter(|| SprouteRouter::default().route(&design).expect("routable"))
    });
    group.bench_function("lagrangian", |b| {
        b.iter(|| {
            LagrangianRouter::default()
                .route(&design)
                .expect("routable")
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_train_iteration, bench_full_routers
}
criterion_main!(benches);
