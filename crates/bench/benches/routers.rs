//! End-to-end benchmarks: one DGR training iteration and the full routing
//! pipelines on a small catalog case.

use dgr_autodiff::Adam;
use dgr_baseline::{LagrangianRouter, SequentialRouter, SprouteRouter};
use dgr_bench::harness::Harness;
use dgr_core::{build_cost_model, DgrConfig, DgrRouter};
use dgr_io::{IspdLikeConfig, IspdLikeGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_design() -> dgr_grid::Design {
    IspdLikeGenerator::new(IspdLikeConfig {
        width: 48,
        height: 48,
        num_nets: 500,
        ..IspdLikeConfig::default()
    })
    .generate()
    .expect("valid config")
}

fn bench_train_iteration(h: &mut Harness) {
    let design = small_design();
    let cfg = DgrConfig::default();
    let mut rng = StdRng::seed_from_u64(0);
    let pools: Vec<_> = design
        .nets
        .iter()
        .map(|n| dgr_rsmt::tree_candidates(&n.pins, &cfg.candidates).expect("pins"))
        .collect();
    let forest = dgr_dag::build_forest(&design.grid, &pools, cfg.patterns).expect("in grid");
    let mut model = build_cost_model(&design, &forest, &cfg, &mut rng);
    let mut adam = Adam::new(&model.graph, cfg.learning_rate);
    h.bench("dgr_train_iteration_500_nets", || {
        model.graph.forward();
        model.graph.backward(model.loss);
        adam.step(&mut model.graph);
    });
}

fn bench_full_routers(h: &mut Harness) {
    let design = small_design();
    h.bench("full_route_500_nets/dgr_100_iters", || {
        let cfg = DgrConfig {
            iterations: 100,
            ..DgrConfig::default()
        };
        DgrRouter::new(cfg).route(&design).expect("routable");
    });
    h.bench("full_route_500_nets/sequential", || {
        SequentialRouter::default()
            .route(&design)
            .expect("routable");
    });
    h.bench("full_route_500_nets/sproute", || {
        SprouteRouter::default().route(&design).expect("routable");
    });
    h.bench("full_route_500_nets/lagrangian", || {
        LagrangianRouter::default()
            .route(&design)
            .expect("routable");
    });
}

fn main() {
    let mut h = Harness::from_args();
    bench_train_iteration(&mut h);
    bench_full_routers(&mut h);
}
