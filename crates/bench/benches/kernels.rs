//! Micro-benchmarks of the hot kernels: the building blocks whose
//! throughput determines DGR's per-iteration cost.

use std::sync::Arc;

use dgr_autodiff::{Graph, Segments};
use dgr_bench::harness::Harness;
use dgr_grid::{GcellGrid, Point};
use dgr_rsmt::{rsmt, tree_candidates, CandidateConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_segmented_softmax(h: &mut Harness) {
    for &n in &[10_000usize, 100_000, 1_000_000] {
        let mut g = Graph::new();
        let mut rng = StdRng::seed_from_u64(1);
        let data: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let w = g.param(data);
        let seg = Arc::new(Segments::uniform(n / 2, 2));
        let p = g.segmented_softmax(w, seg);
        let loss = g.sum_all(p);
        h.bench_throughput(&format!("segmented_softmax/fwd_bwd/{n}"), n as u64, || {
            g.forward();
            g.backward(loss);
        });
    }
}

fn bench_gather_scatter(h: &mut Harness) {
    for &n in &[100_000usize, 1_000_000] {
        let mut rng = StdRng::seed_from_u64(2);
        let mut g = Graph::new();
        let w = g.param((0..n / 4).map(|_| rng.gen_range(0.0..1.0)).collect());
        let idx: Arc<Vec<u32>> =
            Arc::new((0..n).map(|_| rng.gen_range(0..(n as u32 / 4))).collect());
        let tgt: Arc<Vec<u32>> =
            Arc::new((0..n).map(|_| rng.gen_range(0..(n as u32 / 8))).collect());
        let gathered = g.gather(w, idx);
        let d = g.scatter_add(gathered, tgt, n / 8);
        let loss = g.sum_all(d);
        h.bench_throughput(&format!("gather_scatter/fwd_bwd/{n}"), n as u64, || {
            g.forward();
            g.backward(loss);
        });
    }
}

fn bench_rsmt(h: &mut Harness) {
    let mut rng = StdRng::seed_from_u64(3);
    for &pins in &[3usize, 5, 8, 20, 64] {
        let pts: Vec<Point> = (0..pins)
            .map(|_| Point::new(rng.gen_range(0..500), rng.gen_range(0..500)))
            .collect();
        h.bench(&format!("rsmt/pins/{pins}"), || {
            rsmt(&pts).expect("non-empty");
        });
    }
}

fn bench_forest_build(h: &mut Harness) {
    let grid = GcellGrid::new(128, 128).unwrap();
    let mut rng = StdRng::seed_from_u64(4);
    let pools: Vec<_> = (0..2000)
        .map(|_| {
            let pins: Vec<Point> = (0..rng.gen_range(2..5))
                .map(|_| Point::new(rng.gen_range(0..128), rng.gen_range(0..128)))
                .collect();
            tree_candidates(&pins, &CandidateConfig::default()).expect("pins")
        })
        .collect();
    h.bench("forest_build_2000_nets", || {
        dgr_dag::build_forest(&grid, &pools, dgr_dag::PatternConfig::l_only()).expect("in grid");
    });
}

fn bench_maze(h: &mut Harness) {
    let grid = GcellGrid::new(256, 256).unwrap();
    h.bench("maze_route_256", || {
        dgr_baseline::maze_route(
            &grid,
            Point::new(3, 7),
            Point::new(250, 240),
            |_| 1.0,
            &dgr_baseline::maze::MazeConfig::default(),
        )
        .expect("connected");
    });
}

fn main() {
    let mut h = Harness::from_args();
    bench_segmented_softmax(&mut h);
    bench_gather_scatter(&mut h);
    bench_rsmt(&mut h);
    bench_forest_build(&mut h);
    bench_maze(&mut h);
}
