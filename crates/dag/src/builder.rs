//! Construction of a [`DagForest`] from per-net tree candidate pools.

use dgr_grid::GcellGrid;
use dgr_rsmt::RoutingTree;

use crate::forest::DagForest;
use crate::DagError;

/// Pattern families enumerated per 2-pin sub-net.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PatternConfig {
    /// When `Some(s)`, Z-shape candidates are generated with a middle-leg
    /// stride of `s` g-cells in addition to the L-shapes.
    pub z_stride: Option<u32>,
    /// When `Some(d)`, C-shape candidates escape the sub-net's bounding
    /// box by `d` g-cells on each applicable side (2-turn non-monotone
    /// detours) — the paper's third pattern family.
    pub c_detour: Option<u32>,
}

impl Default for PatternConfig {
    /// L-shapes only — the configuration used in all paper experiments.
    fn default() -> Self {
        PatternConfig {
            z_stride: None,
            c_detour: None,
        }
    }
}

impl PatternConfig {
    /// L-shapes only (the paper's default).
    pub fn l_only() -> Self {
        PatternConfig::default()
    }

    /// L-shapes plus Z-shapes at the given stride.
    pub fn with_z(stride: u32) -> Self {
        PatternConfig {
            z_stride: Some(stride),
            c_detour: None,
        }
    }

    /// L-, Z- and C-shapes: the widest static pattern space.
    pub fn with_z_and_c(stride: u32, detour: u32) -> Self {
        PatternConfig {
            z_stride: Some(stride),
            c_detour: Some(detour),
        }
    }
}

/// Builds the DAG forest from each net's routing-tree candidates.
///
/// `candidates[n]` is the tree pool of net `n` (from
/// [`dgr_rsmt::tree_candidates`]). Trees whose nodes leave the grid are
/// rejected.
///
/// Nets whose trees have no sub-nets (single-pin / local nets) still get a
/// tree entry so Eq. (8) stays well-formed; they simply own no sub-nets.
///
/// # Errors
///
/// * [`DagError::EmptyNet`] if a net has no tree candidates,
/// * [`DagError::PathOutOfGrid`] if a path candidate leaves `grid`.
///
/// # Examples
///
/// ```
/// use dgr_grid::{GcellGrid, Point};
/// use dgr_rsmt::{tree_candidates, CandidateConfig};
/// use dgr_dag::{build_forest, PatternConfig};
///
/// let grid = GcellGrid::new(16, 16)?;
/// let pins = vec![Point::new(1, 1), Point::new(9, 4), Point::new(4, 12)];
/// let pool = tree_candidates(&pins, &CandidateConfig::default())?;
/// let forest = build_forest(&grid, &[pool], PatternConfig::l_only())?;
/// assert_eq!(forest.num_nets(), 1);
/// assert!(forest.num_paths() >= forest.num_subnets());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn build_forest(
    grid: &GcellGrid,
    candidates: &[Vec<RoutingTree>],
    patterns: PatternConfig,
) -> Result<DagForest, DagError> {
    build_forest_with_extras(
        grid,
        candidates,
        patterns,
        &std::collections::HashMap::new(),
    )
}

/// [`build_forest`] plus *extra* path candidates for specific sub-nets —
/// the paper's "adaptive expansion of the forest" future-work hook: after
/// a first routing round, congested sub-nets receive additional (e.g.
/// maze-derived) candidates keyed by their construction-order subnet
/// index.
///
/// Extras that duplicate an already-enumerated pattern, or whose
/// endpoints do not match the sub-net, are skipped silently.
///
/// # Errors
///
/// Same contract as [`build_forest`].
pub fn build_forest_with_extras(
    grid: &GcellGrid,
    candidates: &[Vec<RoutingTree>],
    patterns: PatternConfig,
    extras: &std::collections::HashMap<usize, Vec<crate::paths::PatternPath>>,
) -> Result<DagForest, DagError> {
    // Stage 1 (serial, cheap): validate pools and prefix-sum each net's
    // subnet count, so stage 2 knows every net's *global* subnet base —
    // `extras` is keyed by global construction-order subnet index.
    let mut subnet_base = Vec::with_capacity(candidates.len());
    let mut next_subnet = 0usize;
    for (n, pool) in candidates.iter().enumerate() {
        if pool.is_empty() {
            return Err(DagError::EmptyNet { net: n });
        }
        subnet_base.push(next_subnet);
        // a tree's subnets are exactly its edges
        next_subnet += pool.iter().map(|t| t.edges().len()).sum::<usize>();
    }

    // Stage 2: enumerate every net's patterns independently. Chunks are
    // self-contained (counts + flat payloads); `par_indexed` places each
    // net's chunk by index, so the result is identical at any thread
    // count.
    let chunks = dgr_autodiff::parallel::par_indexed(candidates.len(), NET_PAR_MIN, |n| {
        build_net_chunk(grid, &candidates[n], patterns, extras, subnet_base[n])
    });

    // Stage 3 (serial): splice the chunks into the global CSR arenas in
    // net order — pure copies plus offset bookkeeping. The first error in
    // net order surfaces, matching the serial builder.
    let mut net_tree_offsets = Vec::with_capacity(candidates.len() + 1);
    net_tree_offsets.push(0u32);
    let mut tree_net = Vec::new();
    let mut tree_subnet_offsets = vec![0u32];
    let mut subnet_tree = Vec::new();
    let mut subnet_endpoints = Vec::new();
    let mut subnet_path_offsets = vec![0u32];
    let mut path_subnet = Vec::new();
    let mut path_tree = Vec::new();
    let mut path_wl = Vec::new();
    let mut path_turns = Vec::new();
    let mut path_edge_offsets = vec![0u32];
    let mut path_edge_ids: Vec<u32> = Vec::new();
    let mut path_via_offsets = vec![0u32];
    let mut path_via_cells: Vec<u32> = Vec::new();

    for (n, chunk) in chunks.into_iter().enumerate() {
        let chunk = chunk?;
        let mut subnet_cursor = 0usize;
        let mut path_cursor = 0usize;
        let mut edge_cursor = 0usize;
        let mut via_cursor = 0usize;
        for &subnets_in_tree in &chunk.tree_subnet_counts {
            let t = tree_net.len() as u32;
            tree_net.push(n as u32);
            for _ in 0..subnets_in_tree {
                let s = subnet_tree.len() as u32;
                subnet_tree.push(t);
                subnet_endpoints.push(chunk.subnet_endpoints[subnet_cursor]);
                for _ in 0..chunk.subnet_path_counts[subnet_cursor] {
                    path_subnet.push(s);
                    path_tree.push(t);
                    path_wl.push(chunk.path_wl[path_cursor]);
                    path_turns.push(chunk.path_turns[path_cursor]);
                    let ne = chunk.path_edge_counts[path_cursor] as usize;
                    path_edge_ids
                        .extend_from_slice(&chunk.path_edge_ids[edge_cursor..edge_cursor + ne]);
                    edge_cursor += ne;
                    path_edge_offsets.push(path_edge_ids.len() as u32);
                    let nv = chunk.path_via_counts[path_cursor] as usize;
                    path_via_cells
                        .extend_from_slice(&chunk.path_via_cells[via_cursor..via_cursor + nv]);
                    via_cursor += nv;
                    path_via_offsets.push(path_via_cells.len() as u32);
                    path_cursor += 1;
                }
                subnet_path_offsets.push(path_subnet.len() as u32);
                subnet_cursor += 1;
            }
            tree_subnet_offsets.push(subnet_tree.len() as u32);
        }
        net_tree_offsets.push(tree_net.len() as u32);
    }

    let forest = DagForest {
        net_tree_offsets,
        tree_net,
        tree_subnet_offsets,
        subnet_tree,
        subnet_endpoints,
        subnet_path_offsets,
        path_subnet,
        path_tree,
        path_wl,
        path_turns,
        path_edge_offsets,
        path_edge_ids,
        path_via_offsets,
        path_via_cells,
    };
    debug_assert!(forest.validate().is_ok());
    Ok(forest)
}

/// Below this many nets the forest build stays on the calling thread —
/// pattern enumeration for a handful of nets is cheaper than a pool
/// dispatch.
const NET_PAR_MIN: usize = 16;

/// One net's share of the forest, built independently of every other net:
/// per-tree/subnet/path counts plus the flat payloads, spliced into the
/// global CSR arenas by the serial stitch pass.
struct NetChunk {
    tree_subnet_counts: Vec<u32>,
    subnet_endpoints: Vec<(dgr_grid::Point, dgr_grid::Point)>,
    subnet_path_counts: Vec<u32>,
    path_wl: Vec<f32>,
    path_turns: Vec<f32>,
    path_edge_counts: Vec<u32>,
    path_edge_ids: Vec<u32>,
    path_via_counts: Vec<u32>,
    path_via_cells: Vec<u32>,
}

fn build_net_chunk(
    grid: &GcellGrid,
    pool: &[RoutingTree],
    patterns: PatternConfig,
    extras: &std::collections::HashMap<usize, Vec<crate::paths::PatternPath>>,
    subnet_base: usize,
) -> Result<NetChunk, DagError> {
    let mut chunk = NetChunk {
        tree_subnet_counts: Vec::with_capacity(pool.len()),
        subnet_endpoints: Vec::new(),
        subnet_path_counts: Vec::new(),
        path_wl: Vec::new(),
        path_turns: Vec::new(),
        path_edge_counts: Vec::new(),
        path_edge_ids: Vec::new(),
        path_via_counts: Vec::new(),
        path_via_cells: Vec::new(),
    };
    let mut s = subnet_base;
    for tree in pool {
        chunk.tree_subnet_counts.push(tree.edges().len() as u32);
        for (a, b) in tree.subnets() {
            chunk.subnet_endpoints.push((a, b));
            let mut paths = crate::paths::enumerate_patterns(
                a,
                b,
                patterns.z_stride,
                patterns.c_detour,
                Some(grid.bounds()),
            );
            if let Some(more) = extras.get(&s) {
                for extra in more {
                    let endpoints_match = (extra.source() == a && extra.sink() == b)
                        || (extra.source() == b && extra.sink() == a);
                    if endpoints_match && !paths.contains(extra) {
                        paths.push(extra.clone());
                    }
                }
            }
            chunk.subnet_path_counts.push(paths.len() as u32);
            for path in paths {
                chunk.path_wl.push(path.wirelength() as f32);
                chunk.path_turns.push(path.num_turns() as f32);
                let edges_before = chunk.path_edge_ids.len();
                for e in path.edges(grid)? {
                    chunk.path_edge_ids.push(e.0);
                }
                chunk
                    .path_edge_counts
                    .push((chunk.path_edge_ids.len() - edges_before) as u32);
                let vias_before = chunk.path_via_cells.len();
                for v in path.turning_points() {
                    let id = grid.cell_id(v)?;
                    chunk.path_via_cells.push(id.0);
                }
                chunk
                    .path_via_counts
                    .push((chunk.path_via_cells.len() - vias_before) as u32);
            }
            s += 1;
        }
    }
    Ok(chunk)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgr_grid::Point;
    use dgr_rsmt::{tree_candidates, CandidateConfig};

    fn grid() -> GcellGrid {
        GcellGrid::new(20, 20).unwrap()
    }

    fn pool(pins: &[Point]) -> Vec<RoutingTree> {
        tree_candidates(pins, &CandidateConfig::default()).unwrap()
    }

    #[test]
    fn two_pin_diagonal_net_has_two_l_paths() {
        let g = grid();
        let f = build_forest(
            &g,
            &[pool(&[Point::new(2, 2), Point::new(7, 9)])],
            PatternConfig::l_only(),
        )
        .unwrap();
        f.validate().unwrap();
        assert_eq!(f.num_nets(), 1);
        assert_eq!(f.num_trees(), 1);
        assert_eq!(f.num_subnets(), 1);
        assert_eq!(f.num_paths(), 2);
        for i in 0..2 {
            assert_eq!(f.path_wirelength(i), 12.0);
            assert_eq!(f.path_turn_count(i), 1.0);
            assert_eq!(f.path_edges(i).len(), 12);
            assert_eq!(f.path_vias(i).len(), 1);
        }
        // the two L-shapes turn at different corners
        assert_ne!(f.path_vias(0), f.path_vias(1));
    }

    #[test]
    fn aligned_net_has_single_straight_path() {
        let g = grid();
        let f = build_forest(
            &g,
            &[pool(&[Point::new(2, 5), Point::new(11, 5)])],
            PatternConfig::l_only(),
        )
        .unwrap();
        assert_eq!(f.num_paths(), 1);
        assert_eq!(f.path_turn_count(0), 0.0);
        assert!(f.path_vias(0).is_empty());
    }

    #[test]
    fn multi_net_offsets_are_consistent() {
        let g = grid();
        let nets = vec![
            pool(&[Point::new(0, 0), Point::new(5, 5)]),
            pool(&[Point::new(3, 3), Point::new(9, 1), Point::new(6, 8)]),
            pool(&[Point::new(10, 10), Point::new(10, 15)]),
        ];
        let f = build_forest(&g, &nets, PatternConfig::l_only()).unwrap();
        f.validate().unwrap();
        assert_eq!(f.num_nets(), 3);
        // every path's tree cache must match its subnet's tree
        for i in 0..f.num_paths() {
            assert_eq!(f.tree_of_path(i), f.tree_of_subnet(f.subnet_of_path(i)));
        }
    }

    #[test]
    fn z_patterns_add_candidates() {
        let g = grid();
        let nets = vec![pool(&[Point::new(0, 0), Point::new(6, 6)])];
        let l = build_forest(&g, &nets, PatternConfig::l_only()).unwrap();
        let z = build_forest(&g, &nets, PatternConfig::with_z(2)).unwrap();
        assert!(z.num_paths() > l.num_paths());
        z.validate().unwrap();
    }

    #[test]
    fn single_pin_net_is_representable() {
        let g = grid();
        let nets = vec![pool(&[Point::new(4, 4)])];
        let f = build_forest(&g, &nets, PatternConfig::l_only()).unwrap();
        f.validate().unwrap();
        assert_eq!(f.num_trees(), 1);
        assert_eq!(f.num_subnets(), 0);
        assert_eq!(f.num_paths(), 0);
    }

    #[test]
    fn empty_candidate_pool_errors() {
        let g = grid();
        assert!(matches!(
            build_forest(&g, &[Vec::new()], PatternConfig::l_only()),
            Err(DagError::EmptyNet { net: 0 })
        ));
    }

    #[test]
    fn off_grid_tree_errors() {
        let g = GcellGrid::new(4, 4).unwrap();
        let nets = vec![pool(&[Point::new(0, 0), Point::new(10, 10)])];
        assert!(matches!(
            build_forest(&g, &nets, PatternConfig::l_only()),
            Err(DagError::PathOutOfGrid(_))
        ));
    }

    #[test]
    fn multiple_tree_candidates_multiply_subnets() {
        let g = grid();
        let pins = [
            Point::new(1, 1),
            Point::new(12, 2),
            Point::new(6, 14),
            Point::new(3, 9),
            Point::new(15, 8),
        ];
        let pool = tree_candidates(&pins, &CandidateConfig::default()).unwrap();
        assert!(pool.len() > 1, "expected several candidates");
        let f = build_forest(&g, std::slice::from_ref(&pool), PatternConfig::l_only()).unwrap();
        assert_eq!(f.num_trees(), pool.len());
        let total: usize = (0..f.num_trees()).map(|t| f.subnets_of_tree(t).len()).sum();
        assert_eq!(total, f.num_subnets());
    }

    #[test]
    fn extras_extend_the_right_subnet() {
        let g = grid();
        let nets = vec![pool(&[Point::new(0, 0), Point::new(5, 5)])];
        // a 2-turn detour for subnet 0, plus garbage for a non-existent
        // subnet and an endpoint-mismatched extra that must be dropped
        let detour = crate::paths::PatternPath::new(vec![
            Point::new(0, 0),
            Point::new(0, 7),
            Point::new(5, 7),
            Point::new(5, 5),
        ]);
        let mismatched = crate::paths::PatternPath::new(vec![Point::new(1, 1), Point::new(5, 1)]);
        let mut extras = std::collections::HashMap::new();
        extras.insert(0usize, vec![detour.clone(), mismatched]);
        extras.insert(99usize, vec![detour.clone()]);
        let base = build_forest(&g, &nets, PatternConfig::l_only()).unwrap();
        let grown = build_forest_with_extras(&g, &nets, PatternConfig::l_only(), &extras).unwrap();
        grown.validate().unwrap();
        assert_eq!(grown.num_paths(), base.num_paths() + 1);
        // the original candidates keep their order; the extra is appended
        for i in 0..base.num_paths() {
            assert_eq!(grown.path_edges(i), base.path_edges(i));
        }
        let extra_idx = grown.num_paths() - 1;
        assert_eq!(grown.path_wirelength(extra_idx), 14.0); // detour length
        assert_eq!(grown.path_turn_count(extra_idx), 2.0);
    }

    #[test]
    fn duplicate_extras_are_dropped() {
        let g = grid();
        let nets = vec![pool(&[Point::new(0, 0), Point::new(5, 5)])];
        // an extra identical to an enumerated L-shape
        let l_shape = crate::paths::PatternPath::new(vec![
            Point::new(0, 0),
            Point::new(5, 0),
            Point::new(5, 5),
        ]);
        let mut extras = std::collections::HashMap::new();
        extras.insert(0usize, vec![l_shape]);
        let base = build_forest(&g, &nets, PatternConfig::l_only()).unwrap();
        let grown = build_forest_with_extras(&g, &nets, PatternConfig::l_only(), &extras).unwrap();
        assert_eq!(grown.num_paths(), base.num_paths());
    }

    #[test]
    fn parallel_build_is_thread_count_invariant() {
        let g = grid();
        // enough nets to clear NET_PAR_MIN and exercise the fan-out
        let nets: Vec<Vec<RoutingTree>> = (0..40)
            .map(|i| {
                pool(&[
                    Point::new(i % 17, (i * 3) % 19),
                    Point::new((i * 7 + 2) % 18, (i * 5 + 1) % 17),
                    Point::new((i * 11 + 4) % 16, (i * 13 + 6) % 18),
                ])
            })
            .collect();
        let build = |threads: usize| {
            dgr_autodiff::parallel::set_num_threads(threads);
            let f = build_forest(&g, &nets, PatternConfig::with_z(2)).unwrap();
            dgr_autodiff::parallel::set_num_threads(0);
            f
        };
        let f1 = build(1);
        let f8 = build(8);
        f1.validate().unwrap();
        assert_eq!(f1, f8);
    }

    #[test]
    fn bytes_grows_with_paths() {
        let g = grid();
        let small = build_forest(
            &g,
            &[pool(&[Point::new(0, 0), Point::new(2, 2)])],
            PatternConfig::l_only(),
        )
        .unwrap();
        let large = build_forest(
            &g,
            &[pool(&[Point::new(0, 0), Point::new(15, 15)])],
            PatternConfig::with_z(1),
        )
        .unwrap();
        assert!(large.bytes() > small.bytes());
    }
}
