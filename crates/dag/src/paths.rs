//! Pattern-path enumeration for 2-pin sub-nets.
//!
//! The paper enumerates L-shape patterns per sub-net (Section 4.2) and
//! notes the representation extends to Z-/C-shape, monotonic or maze
//! paths. This module enumerates:
//!
//! * the straight path for aligned endpoints (0 turns),
//! * both L-shapes for diagonal endpoints (1 turn each),
//! * optionally Z-shapes (2 turns) at a configurable stride — the first
//!   "extension" knob the paper's future-work section calls for.
//!
//! Every enumerated path is *monotone*, so its wirelength equals the
//! Manhattan distance of its endpoints; paths differ only in which g-cell
//! edges they consume and where their turning points (vias) fall.

use dgr_grid::{GcellGrid, Point};

use crate::DagError;

/// One concrete pattern path: a polyline of corner points from source to
/// sink (inclusive), with derived wirelength and turn count.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PatternPath {
    /// Waypoints including both endpoints; consecutive waypoints are
    /// rectilinearly aligned.
    pub corners: Vec<Point>,
}

impl PatternPath {
    /// Builds a path from waypoints.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if consecutive waypoints are not aligned.
    pub fn new(corners: Vec<Point>) -> Self {
        debug_assert!(!corners.is_empty());
        debug_assert!(
            corners.windows(2).all(|w| w[0].is_aligned_with(w[1])),
            "pattern path has diagonal hop"
        );
        PatternPath { corners }
    }

    /// Source endpoint.
    pub fn source(&self) -> Point {
        self.corners[0]
    }

    /// Sink endpoint.
    pub fn sink(&self) -> Point {
        *self.corners.last().expect("non-empty corners")
    }

    /// Total wirelength in g-cell edge units.
    pub fn wirelength(&self) -> u32 {
        self.corners
            .windows(2)
            .map(|w| w[0].manhattan_distance(w[1]))
            .sum()
    }

    /// Interior turning points (where the path changes direction).
    ///
    /// Collinear interior waypoints do not count as turns.
    pub fn turning_points(&self) -> Vec<Point> {
        let mut turns = Vec::new();
        for w in self.corners.windows(3) {
            let (a, b, c) = (w[0], w[1], w[2]);
            let dir1 = (b.x - a.x != 0, b.y - a.y != 0);
            let dir2 = (c.x - b.x != 0, c.y - b.y != 0);
            // a turn changes between horizontal and vertical movement
            if dir1 != dir2 && dir1 != (false, false) && dir2 != (false, false) {
                turns.push(b);
            }
        }
        turns
    }

    /// Number of turning points.
    pub fn num_turns(&self) -> u32 {
        self.turning_points().len() as u32
    }

    /// The g-cell edges the path occupies, in order from source to sink.
    ///
    /// # Errors
    ///
    /// Returns [`DagError::PathOutOfGrid`] if any segment leaves the grid.
    pub fn edges(&self, grid: &GcellGrid) -> Result<Vec<dgr_grid::EdgeId>, DagError> {
        let mut out = Vec::with_capacity(self.wirelength() as usize);
        for w in self.corners.windows(2) {
            grid.push_segment_edges(w[0], w[1], &mut out)?;
        }
        Ok(out)
    }
}

impl std::fmt::Display for PatternPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut first = true;
        for c in &self.corners {
            if !first {
                write!(f, " → ")?;
            }
            write!(f, "{c}")?;
            first = false;
        }
        Ok(())
    }
}

/// Enumerates L- and Z-shape candidates between `a` and `b` — shorthand
/// for [`enumerate_patterns`] without C-shape detours.
///
/// # Examples
///
/// ```
/// use dgr_grid::Point;
/// use dgr_dag::enumerate_paths;
///
/// let ls = enumerate_paths(Point::new(0, 0), Point::new(3, 2), None);
/// assert_eq!(ls.len(), 2); // two L-shapes
/// let zs = enumerate_paths(Point::new(0, 0), Point::new(3, 2), Some(1));
/// assert!(zs.len() > 2); // L-shapes plus Z-shapes
/// ```
pub fn enumerate_paths(a: Point, b: Point, z_stride: Option<u32>) -> Vec<PatternPath> {
    enumerate_patterns(a, b, z_stride, None, None)
}

/// Enumerates pattern-path candidates between `a` and `b`.
///
/// * Aligned endpoints yield the single straight path.
/// * Diagonal endpoints yield both L-shapes, plus — when `z_stride` is
///   `Some(s)` — Z-shapes whose middle leg sits at every `s`-th intermediate
///   coordinate (both HVH and VHV families).
/// * When `c_detour` is `Some(d)`, **C-shapes** (the paper's third pattern
///   family) escape the bounding box by `d` g-cells on each applicable
///   side: non-monotone detours with 2 turns and `+2·d`-ish wirelength.
///   Escapes leaving `bounds` are skipped.
///
/// Identical paths (e.g. for `a == b`) are deduplicated. The result is
/// never empty.
///
/// # Examples
///
/// ```
/// use dgr_grid::{Point, Rect};
/// use dgr_dag::enumerate_patterns;
///
/// // an aligned pair with C-detours: the straight path plus two U-bends
/// let bounds = Rect::new(Point::new(0, 0), Point::new(9, 9));
/// let paths = enumerate_patterns(
///     Point::new(1, 5),
///     Point::new(7, 5),
///     None,
///     Some(2),
///     Some(bounds),
/// );
/// assert_eq!(paths.len(), 3);
/// ```
pub fn enumerate_patterns(
    a: Point,
    b: Point,
    z_stride: Option<u32>,
    c_detour: Option<u32>,
    bounds: Option<dgr_grid::Rect>,
) -> Vec<PatternPath> {
    if a == b {
        return vec![PatternPath::new(vec![a])];
    }
    let mut out = Vec::new();
    if a.is_aligned_with(b) {
        out.push(PatternPath::new(vec![a, b]));
    } else {
        let (c1, c2) = a.l_corners(b);
        out.push(PatternPath::new(vec![a, c1, b]));
        out.push(PatternPath::new(vec![a, c2, b]));
        if let Some(stride) = z_stride {
            let stride = stride.max(1) as i32;
            // HVH: horizontal to xm, vertical, horizontal to b.
            let (x0, x1) = (a.x.min(b.x), a.x.max(b.x));
            let mut xm = x0 + stride;
            while xm < x1 {
                out.push(PatternPath::new(vec![
                    a,
                    Point::new(xm, a.y),
                    Point::new(xm, b.y),
                    b,
                ]));
                xm += stride;
            }
            // VHV: vertical to ym, horizontal, vertical to b.
            let (y0, y1) = (a.y.min(b.y), a.y.max(b.y));
            let mut ym = y0 + stride;
            while ym < y1 {
                out.push(PatternPath::new(vec![
                    a,
                    Point::new(a.x, ym),
                    Point::new(b.x, ym),
                    b,
                ]));
                ym += stride;
            }
        }
    }
    if let Some(d) = c_detour {
        let d = d.max(1) as i32;
        let inside = |p: Point| bounds.is_none_or(|r| r.contains(p));
        // horizontal escape lines (middle leg runs horizontally at Y):
        // invalid for vertical pairs — the legs would overlap themselves
        if a.x != b.x {
            for y in [a.y.max(b.y) + d, a.y.min(b.y) - d] {
                let (m1, m2) = (Point::new(a.x, y), Point::new(b.x, y));
                if inside(m1) && inside(m2) {
                    out.push(PatternPath::new(vec![a, m1, m2, b]));
                }
            }
        }
        // vertical escape lines (middle leg runs vertically at X)
        if a.y != b.y {
            for x in [a.x.max(b.x) + d, a.x.min(b.x) - d] {
                let (m1, m2) = (Point::new(x, a.y), Point::new(x, b.y));
                if inside(m1) && inside(m2) {
                    out.push(PatternPath::new(vec![a, m1, m2, b]));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgr_grid::GcellGrid;

    #[test]
    fn straight_path_has_no_turns() {
        let ps = enumerate_paths(Point::new(1, 1), Point::new(5, 1), Some(1));
        assert_eq!(ps.len(), 1);
        assert_eq!(ps[0].num_turns(), 0);
        assert_eq!(ps[0].wirelength(), 4);
    }

    #[test]
    fn l_shapes_have_one_turn_each() {
        let ps = enumerate_paths(Point::new(0, 0), Point::new(4, 3), None);
        assert_eq!(ps.len(), 2);
        for p in &ps {
            assert_eq!(p.num_turns(), 1);
            assert_eq!(p.wirelength(), 7);
            assert_eq!(p.source(), Point::new(0, 0));
            assert_eq!(p.sink(), Point::new(4, 3));
        }
        assert_ne!(ps[0], ps[1]);
    }

    #[test]
    fn z_shapes_have_two_turns() {
        let ps = enumerate_paths(Point::new(0, 0), Point::new(4, 3), Some(1));
        // 2 L + 3 HVH (xm = 1,2,3) + 2 VHV (ym = 1,2)
        assert_eq!(ps.len(), 7);
        for p in &ps[2..] {
            assert_eq!(p.num_turns(), 2);
            assert_eq!(p.wirelength(), 7);
        }
    }

    #[test]
    fn z_stride_thins_candidates() {
        let dense = enumerate_paths(Point::new(0, 0), Point::new(9, 9), Some(1)).len();
        let sparse = enumerate_paths(Point::new(0, 0), Point::new(9, 9), Some(4)).len();
        assert!(sparse < dense);
        assert!(sparse >= 2);
    }

    #[test]
    fn degenerate_pair_is_single_empty_path() {
        let ps = enumerate_paths(Point::new(2, 2), Point::new(2, 2), Some(1));
        assert_eq!(ps.len(), 1);
        assert_eq!(ps[0].wirelength(), 0);
        assert_eq!(ps[0].num_turns(), 0);
    }

    #[test]
    fn edges_cover_the_wirelength() {
        let grid = GcellGrid::new(10, 10).unwrap();
        for p in enumerate_paths(Point::new(1, 2), Point::new(6, 8), Some(2)) {
            let edges = p.edges(&grid).unwrap();
            assert_eq!(edges.len() as u32, p.wirelength());
            // no edge repeats on a monotone path
            let set: std::collections::HashSet<_> = edges.iter().collect();
            assert_eq!(set.len(), edges.len());
        }
    }

    #[test]
    fn out_of_grid_path_errors() {
        let grid = GcellGrid::new(3, 3).unwrap();
        let p = PatternPath::new(vec![Point::new(0, 0), Point::new(5, 0)]);
        assert!(matches!(p.edges(&grid), Err(DagError::PathOutOfGrid(_))));
    }

    #[test]
    fn collinear_interior_waypoint_is_not_a_turn() {
        let p = PatternPath::new(vec![Point::new(0, 0), Point::new(2, 0), Point::new(5, 0)]);
        assert_eq!(p.num_turns(), 0);
    }

    #[test]
    fn c_shapes_detour_outside_the_box() {
        use dgr_grid::Rect;
        let bounds = Rect::new(Point::new(0, 0), Point::new(20, 20));
        // aligned pair: straight + two U-bends (above and below)
        let ps = enumerate_patterns(
            Point::new(2, 5),
            Point::new(8, 5),
            None,
            Some(3),
            Some(bounds),
        );
        assert_eq!(ps.len(), 3);
        for p in &ps[1..] {
            assert_eq!(p.num_turns(), 2);
            assert_eq!(p.wirelength(), 6 + 2 * 3); // detour pays 2·d
        }
        // diagonal pair: 2 L + 4 C escapes
        let ps = enumerate_patterns(
            Point::new(5, 5),
            Point::new(9, 8),
            None,
            Some(2),
            Some(bounds),
        );
        assert_eq!(ps.len(), 6);
        // every path still connects the endpoints
        for p in &ps {
            assert_eq!(p.source(), Point::new(5, 5));
            assert_eq!(p.sink(), Point::new(9, 8));
        }
    }

    #[test]
    fn c_shapes_respect_bounds() {
        use dgr_grid::Rect;
        // near the border: escapes that would leave the grid are skipped
        let bounds = Rect::new(Point::new(0, 0), Point::new(10, 10));
        let ps = enumerate_patterns(
            Point::new(0, 0),
            Point::new(6, 0),
            None,
            Some(2),
            Some(bounds),
        );
        // straight + the upward U only (downward would go to y = −2)
        assert_eq!(ps.len(), 2);
    }

    #[test]
    fn vertical_pair_gets_only_sideways_detours() {
        use dgr_grid::Rect;
        let bounds = Rect::new(Point::new(0, 0), Point::new(20, 20));
        let ps = enumerate_patterns(
            Point::new(5, 2),
            Point::new(5, 9),
            None,
            Some(2),
            Some(bounds),
        );
        // straight + left/right C; no vertical escape (it would overlap
        // its own leg)
        assert_eq!(ps.len(), 3);
        for p in &ps[1..] {
            assert!(p.corners.iter().all(|c| c.y >= 2 && c.y <= 9));
        }
    }

    #[test]
    fn turning_points_of_l_shape() {
        let p = PatternPath::new(vec![Point::new(0, 0), Point::new(3, 0), Point::new(3, 4)]);
        assert_eq!(p.turning_points(), vec![Point::new(3, 0)]);
    }
}
