#![warn(missing_docs)]

//! The routing DAG forest — DGR's core data structure.
//!
//! A *DAG forest* (Section 3.1 of the paper) represents the complete 2D
//! pattern-routing search space of a design:
//!
//! ```text
//! net ──► routing-tree candidates ──► 2-pin sub-nets ──► path candidates
//! ```
//!
//! Each net owns one or more [routing trees](dgr_rsmt::RoutingTree); each
//! tree induces 2-pin sub-nets; each sub-net owns one or more pattern-path
//! candidates (straight / L-shape / optional Z-shapes). Selecting one tree
//! per net (Eq. 8) and one path per sub-net of that tree (Eq. 7) yields a
//! 2D routing solution.
//!
//! The whole forest is stored as flat CSR arenas ([`DagForest`]) so the
//! differentiable solver can stream it with gather/scatter kernels — the
//! layout mirrors what DGR keeps in GPU tensors.

pub mod builder;
pub mod forest;
pub mod paths;
pub mod stats;

pub use builder::{build_forest, build_forest_with_extras, PatternConfig};
pub use forest::DagForest;
pub use paths::{enumerate_paths, enumerate_patterns, PatternPath};
pub use stats::ForestStats;

/// Errors produced while building or validating a DAG forest.
#[derive(Debug, Clone, PartialEq)]
pub enum DagError {
    /// A path candidate left the routing grid.
    PathOutOfGrid(String),
    /// A net had no tree candidates.
    EmptyNet {
        /// Index of the offending net.
        net: usize,
    },
    /// Internal consistency violation (indicates a bug, not bad input).
    Inconsistent(String),
}

impl std::fmt::Display for DagError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DagError::PathOutOfGrid(why) => write!(f, "path candidate left the grid: {why}"),
            DagError::EmptyNet { net } => write!(f, "net {net} has no tree candidates"),
            DagError::Inconsistent(why) => write!(f, "forest inconsistency: {why}"),
        }
    }
}

impl std::error::Error for DagError {}

impl From<dgr_grid::GridError> for DagError {
    fn from(e: dgr_grid::GridError) -> Self {
        DagError::PathOutOfGrid(e.to_string())
    }
}
