//! The flattened DAG-forest arenas.

use serde::{Deserialize, Serialize};

use crate::DagError;

/// The complete 2D pattern-routing search space of a design, stored as
/// flat CSR arenas (the layout DGR keeps in GPU tensors).
///
/// Index spaces:
///
/// * **net** `0..num_nets()` — input nets,
/// * **tree** `0..num_trees()` — routing-tree candidates, grouped by net
///   via `net_tree_offsets`,
/// * **subnet** `0..num_subnets()` — 2-pin sub-nets, grouped by tree via
///   `tree_subnet_offsets`,
/// * **path** `0..num_paths()` — pattern-path candidates, grouped by
///   subnet via `subnet_path_offsets`.
///
/// Per-path CSR side tables map paths to the g-cell edges they occupy and
/// the g-cells where they turn (via pressure).
///
/// Construct with [`crate::build_forest`]; all fields are read-only after
/// construction (exposed through accessors so the representation can
/// evolve without breaking users).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DagForest {
    pub(crate) net_tree_offsets: Vec<u32>,
    pub(crate) tree_net: Vec<u32>,
    pub(crate) tree_subnet_offsets: Vec<u32>,
    pub(crate) subnet_tree: Vec<u32>,
    pub(crate) subnet_endpoints: Vec<(dgr_grid::Point, dgr_grid::Point)>,
    pub(crate) subnet_path_offsets: Vec<u32>,
    pub(crate) path_subnet: Vec<u32>,
    pub(crate) path_tree: Vec<u32>,
    pub(crate) path_wl: Vec<f32>,
    pub(crate) path_turns: Vec<f32>,
    pub(crate) path_edge_offsets: Vec<u32>,
    pub(crate) path_edge_ids: Vec<u32>,
    pub(crate) path_via_offsets: Vec<u32>,
    pub(crate) path_via_cells: Vec<u32>,
}

impl DagForest {
    /// Number of nets.
    pub fn num_nets(&self) -> usize {
        self.net_tree_offsets.len() - 1
    }

    /// Number of routing-tree candidates across all nets.
    pub fn num_trees(&self) -> usize {
        self.tree_net.len()
    }

    /// Number of 2-pin sub-nets across all trees.
    pub fn num_subnets(&self) -> usize {
        self.subnet_tree.len()
    }

    /// Number of pattern-path candidates across all sub-nets.
    pub fn num_paths(&self) -> usize {
        self.path_subnet.len()
    }

    /// Tree candidates of net `n`, as a tree-index range.
    ///
    /// # Panics
    ///
    /// Panics if `n >= num_nets()`.
    pub fn trees_of_net(&self, n: usize) -> std::ops::Range<usize> {
        self.net_tree_offsets[n] as usize..self.net_tree_offsets[n + 1] as usize
    }

    /// The net owning tree `t`.
    pub fn net_of_tree(&self, t: usize) -> usize {
        self.tree_net[t] as usize
    }

    /// Sub-nets of tree `t`, as a subnet-index range.
    pub fn subnets_of_tree(&self, t: usize) -> std::ops::Range<usize> {
        self.tree_subnet_offsets[t] as usize..self.tree_subnet_offsets[t + 1] as usize
    }

    /// The tree owning subnet `s`.
    pub fn tree_of_subnet(&self, s: usize) -> usize {
        self.subnet_tree[s] as usize
    }

    /// The two endpoint g-cells of subnet `s`.
    pub fn subnet_endpoints(&self, s: usize) -> (dgr_grid::Point, dgr_grid::Point) {
        self.subnet_endpoints[s]
    }

    /// Path candidates of subnet `s`, as a path-index range.
    pub fn paths_of_subnet(&self, s: usize) -> std::ops::Range<usize> {
        self.subnet_path_offsets[s] as usize..self.subnet_path_offsets[s + 1] as usize
    }

    /// The subnet owning path `i`.
    pub fn subnet_of_path(&self, i: usize) -> usize {
        self.path_subnet[i] as usize
    }

    /// The tree owning path `i` (cached to avoid the double indirection in
    /// hot kernels).
    pub fn tree_of_path(&self, i: usize) -> usize {
        self.path_tree[i] as usize
    }

    /// Wirelength of path `i` (`WL_i` in Eq. 4).
    pub fn path_wirelength(&self, i: usize) -> f32 {
        self.path_wl[i]
    }

    /// Turning-point count of path `i` (`TP_i` in Eq. 5).
    pub fn path_turn_count(&self, i: usize) -> f32 {
        self.path_turns[i]
    }

    /// G-cell edges occupied by path `i` (raw [`dgr_grid::EdgeId`] values).
    pub fn path_edges(&self, i: usize) -> &[u32] {
        let lo = self.path_edge_offsets[i] as usize;
        let hi = self.path_edge_offsets[i + 1] as usize;
        &self.path_edge_ids[lo..hi]
    }

    /// G-cells where path `i` turns (raw [`dgr_grid::GcellId`] values).
    pub fn path_vias(&self, i: usize) -> &[u32] {
        let lo = self.path_via_offsets[i] as usize;
        let hi = self.path_via_offsets[i + 1] as usize;
        &self.path_via_cells[lo..hi]
    }

    /// Dense per-path wirelength vector (Eq. 4's `WL` weights).
    pub fn path_wl_slice(&self) -> &[f32] {
        &self.path_wl
    }

    /// Dense per-path turn-count vector (Eq. 5's `TP` weights).
    pub fn path_turns_slice(&self) -> &[f32] {
        &self.path_turns
    }

    /// Per-path tree index (the gather table for `q_tree(i)` in Eq. 9–12).
    pub fn path_tree_slice(&self) -> &[u32] {
        &self.path_tree
    }

    /// CSR offsets grouping paths by subnet (softmax groups for `p`).
    pub fn subnet_path_offsets_slice(&self) -> &[u32] {
        &self.subnet_path_offsets
    }

    /// CSR offsets grouping trees by net (softmax groups for `q`).
    pub fn net_tree_offsets_slice(&self) -> &[u32] {
        &self.net_tree_offsets
    }

    /// CSR (offsets, edge ids) mapping each path to its g-cell edges.
    pub fn path_edge_csr(&self) -> (&[u32], &[u32]) {
        (&self.path_edge_offsets, &self.path_edge_ids)
    }

    /// CSR (offsets, cell ids) mapping each path to its turn cells.
    pub fn path_via_csr(&self) -> (&[u32], &[u32]) {
        (&self.path_via_offsets, &self.path_via_cells)
    }

    /// Approximate heap footprint of the arenas in bytes — the
    /// reproduction's analogue of the paper's GPU-memory axis (Fig. 5b).
    pub fn bytes(&self) -> usize {
        4 * (self.net_tree_offsets.len()
            + self.tree_net.len()
            + self.tree_subnet_offsets.len()
            + self.subnet_tree.len()
            + 4 * self.subnet_endpoints.len()
            + self.subnet_path_offsets.len()
            + self.path_subnet.len()
            + self.path_tree.len()
            + self.path_wl.len()
            + self.path_turns.len()
            + self.path_edge_offsets.len()
            + self.path_edge_ids.len()
            + self.path_via_offsets.len()
            + self.path_via_cells.len())
    }

    /// Verifies every cross-index invariant of the arenas.
    ///
    /// # Errors
    ///
    /// Returns [`DagError::Inconsistent`] naming the first violation.
    pub fn validate(&self) -> Result<(), DagError> {
        let check_csr = |name: &str, offsets: &[u32], n_items: usize| {
            if offsets.is_empty() {
                return Err(DagError::Inconsistent(format!("{name}: empty offsets")));
            }
            if offsets[0] != 0 || *offsets.last().expect("non-empty") as usize != n_items {
                return Err(DagError::Inconsistent(format!(
                    "{name}: offsets must span 0..{n_items}"
                )));
            }
            if offsets.windows(2).any(|w| w[0] > w[1]) {
                return Err(DagError::Inconsistent(format!(
                    "{name}: offsets not monotone"
                )));
            }
            Ok(())
        };
        check_csr("net→tree", &self.net_tree_offsets, self.num_trees())?;
        check_csr("tree→subnet", &self.tree_subnet_offsets, self.num_subnets())?;
        check_csr("subnet→path", &self.subnet_path_offsets, self.num_paths())?;
        check_csr(
            "path→edge",
            &self.path_edge_offsets,
            self.path_edge_ids.len(),
        )?;
        check_csr(
            "path→via",
            &self.path_via_offsets,
            self.path_via_cells.len(),
        )?;
        if self.path_subnet.len() != self.path_tree.len()
            || self.path_subnet.len() != self.path_wl.len()
            || self.path_subnet.len() != self.path_turns.len()
        {
            return Err(DagError::Inconsistent(
                "per-path arrays disagree on length".into(),
            ));
        }
        if self.subnet_endpoints.len() != self.subnet_tree.len() {
            return Err(DagError::Inconsistent(
                "subnet endpoint table disagrees with subnet count".into(),
            ));
        }
        // back-pointers agree with the CSR groupings
        for n in 0..self.num_nets() {
            for t in self.trees_of_net(n) {
                if self.net_of_tree(t) != n {
                    return Err(DagError::Inconsistent(format!(
                        "tree {t} back-pointer disagrees with net {n}"
                    )));
                }
            }
        }
        for t in 0..self.num_trees() {
            for s in self.subnets_of_tree(t) {
                if self.tree_of_subnet(s) != t {
                    return Err(DagError::Inconsistent(format!(
                        "subnet {s} back-pointer disagrees with tree {t}"
                    )));
                }
            }
        }
        for s in 0..self.num_subnets() {
            let range = self.paths_of_subnet(s);
            if range.is_empty() {
                return Err(DagError::Inconsistent(format!("subnet {s} has no paths")));
            }
            for i in range {
                if self.subnet_of_path(i) != s {
                    return Err(DagError::Inconsistent(format!(
                        "path {i} back-pointer disagrees with subnet {s}"
                    )));
                }
                if self.tree_of_path(i) != self.tree_of_subnet(s) {
                    return Err(DagError::Inconsistent(format!(
                        "path {i} tree cache disagrees with subnet {s}"
                    )));
                }
            }
        }
        for n in 0..self.num_nets() {
            if self.trees_of_net(n).is_empty() {
                return Err(DagError::EmptyNet { net: n });
            }
        }
        Ok(())
    }
}
