//! Forest size statistics for reporting and the scalability study.

use serde::{Deserialize, Serialize};

use crate::forest::DagForest;

/// Aggregate size statistics of a [`DagForest`].
///
/// # Examples
///
/// ```
/// use dgr_grid::{GcellGrid, Point};
/// use dgr_rsmt::{tree_candidates, CandidateConfig};
/// use dgr_dag::{build_forest, ForestStats, PatternConfig};
///
/// let grid = GcellGrid::new(8, 8)?;
/// let pool = tree_candidates(
///     &[Point::new(0, 0), Point::new(5, 6)],
///     &CandidateConfig::default(),
/// )?;
/// let forest = build_forest(&grid, &[pool], PatternConfig::l_only())?;
/// let stats = ForestStats::measure(&forest);
/// assert_eq!(stats.nets, 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ForestStats {
    /// Number of input nets.
    pub nets: usize,
    /// Total routing-tree candidates.
    pub trees: usize,
    /// Total 2-pin sub-nets.
    pub subnets: usize,
    /// Total pattern-path candidates.
    pub paths: usize,
    /// Total path→edge CSR entries (the dominant memory term).
    pub path_edge_entries: usize,
    /// Mean tree candidates per net.
    pub trees_per_net: f64,
    /// Mean path candidates per sub-net.
    pub paths_per_subnet: f64,
    /// Approximate arena footprint in bytes.
    pub bytes: usize,
}

impl ForestStats {
    /// Computes statistics for `forest`.
    pub fn measure(forest: &DagForest) -> Self {
        let nets = forest.num_nets();
        let trees = forest.num_trees();
        let subnets = forest.num_subnets();
        let paths = forest.num_paths();
        ForestStats {
            nets,
            trees,
            subnets,
            paths,
            path_edge_entries: forest.path_edge_csr().1.len(),
            trees_per_net: if nets == 0 {
                0.0
            } else {
                trees as f64 / nets as f64
            },
            paths_per_subnet: if subnets == 0 {
                0.0
            } else {
                paths as f64 / subnets as f64
            },
            bytes: forest.bytes(),
        }
    }
}

impl std::fmt::Display for ForestStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} nets | {} trees ({:.2}/net) | {} subnets | {} paths ({:.2}/subnet) | {:.1} MiB",
            self.nets,
            self.trees,
            self.trees_per_net,
            self.subnets,
            self.paths,
            self.paths_per_subnet,
            self.bytes as f64 / (1024.0 * 1024.0),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{build_forest, PatternConfig};
    use dgr_grid::{GcellGrid, Point};
    use dgr_rsmt::{tree_candidates, CandidateConfig};

    #[test]
    fn stats_match_forest_counts() {
        let grid = GcellGrid::new(16, 16).unwrap();
        let nets = vec![
            tree_candidates(
                &[Point::new(0, 0), Point::new(9, 9)],
                &CandidateConfig::default(),
            )
            .unwrap(),
            tree_candidates(
                &[Point::new(3, 3), Point::new(8, 1), Point::new(5, 12)],
                &CandidateConfig::default(),
            )
            .unwrap(),
        ];
        let f = build_forest(&grid, &nets, PatternConfig::l_only()).unwrap();
        let s = ForestStats::measure(&f);
        assert_eq!(s.nets, 2);
        assert_eq!(s.trees, f.num_trees());
        assert_eq!(s.paths, f.num_paths());
        assert!(s.paths_per_subnet >= 1.0);
        assert!(s.bytes > 0);
        let display = s.to_string();
        assert!(display.contains("2 nets"));
    }
}
