//! A plain-text design format with round-trip parsing.
//!
//! ```text
//! DGR-DESIGN v1
//! grid <width> <height> <layers>
//! tracks <e0> <e1> ... <eN-1>        # one capacity per edge id
//! beta <c0> <c1> ... <cM-1>          # one β weight per g-cell id
//! net <name> <x0> <y0> <x1> <y1> ...  # one line per net
//! ```
//!
//! Capacities are written post-deduction (the Eq. 1 result) and floats use
//! Rust's shortest round-trip representation, so a parsed design routes
//! **bit-identically** to the generated one.

use dgr_grid::{CapacityModel, Design, GcellGrid, Net, Point};

use crate::IoError;

/// Serializes `design` to the text format.
pub fn write_design(design: &Design) -> String {
    let mut out = String::new();
    out.push_str("DGR-DESIGN v1\n");
    out.push_str(&format!(
        "grid {} {} {}\n",
        design.grid.width(),
        design.grid.height(),
        design.num_layers
    ));
    out.push_str("tracks");
    for &c in design.capacity.as_slice() {
        out.push_str(&format!(" {c}"));
    }
    out.push('\n');
    out.push_str("beta");
    for &b in design.capacity.beta_slice() {
        out.push_str(&format!(" {b}"));
    }
    out.push('\n');
    for net in &design.nets {
        out.push_str(&format!("net {}", net.name));
        for p in &net.pins {
            out.push_str(&format!(" {} {}", p.x, p.y));
        }
        out.push('\n');
    }
    out
}

/// Parses a design from the text format.
///
/// # Errors
///
/// Returns [`IoError::Parse`] with the offending line on malformed
/// input, or [`IoError::Grid`] if the parsed design fails validation.
pub fn parse_design(text: &str) -> Result<Design, IoError> {
    let err = |line: usize, message: &str| IoError::Parse {
        line,
        message: message.to_owned(),
    };
    let mut lines = text.lines().enumerate();
    let (i, header) = lines.next().ok_or_else(|| err(1, "empty file"))?;
    if header.trim() != "DGR-DESIGN v1" {
        return Err(err(i + 1, "missing DGR-DESIGN v1 header"));
    }
    let (i, grid_line) = lines.next().ok_or_else(|| err(2, "missing grid line"))?;
    let parts: Vec<&str> = grid_line.split_whitespace().collect();
    if parts.len() != 4 || parts[0] != "grid" {
        return Err(err(i + 1, "expected `grid <w> <h> <layers>`"));
    }
    let parse_u32 = |s: &str, line: usize| -> Result<u32, IoError> {
        s.parse().map_err(|_| err(line, "invalid integer"))
    };
    let width = parse_u32(parts[1], i + 1)?;
    let height = parse_u32(parts[2], i + 1)?;
    let layers = parse_u32(parts[3], i + 1)?;
    let grid = GcellGrid::new(width, height)?;

    let (i, tracks_line) = lines.next().ok_or_else(|| err(3, "missing tracks line"))?;
    let mut it = tracks_line.split_whitespace();
    if it.next() != Some("tracks") {
        return Err(err(i + 1, "expected `tracks ...`"));
    }
    let tracks: Result<Vec<f32>, IoError> = it
        .map(|s| s.parse::<f32>().map_err(|_| err(i + 1, "invalid capacity")))
        .collect();
    let tracks = tracks?;

    // optional beta line (older files omit it → uniform 1.0)
    let mut lines = lines.peekable();
    let beta = match lines.peek() {
        Some((_, l)) if l.trim_start().starts_with("beta") => {
            let (i, l) = lines.next().expect("peeked");
            let vals: Result<Vec<f32>, IoError> = l
                .split_whitespace()
                .skip(1)
                .map(|s| s.parse::<f32>().map_err(|_| err(i + 1, "invalid beta")))
                .collect();
            vals?
        }
        _ => vec![1.0; grid.num_cells()],
    };
    let capacity = CapacityModel::from_parts(&grid, tracks, beta)?;

    let mut nets = Vec::new();
    for (i, line) in lines {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        if it.next() != Some("net") {
            return Err(err(i + 1, "expected `net <name> <pins...>`"));
        }
        let name = it.next().ok_or_else(|| err(i + 1, "missing net name"))?;
        let coords: Result<Vec<i32>, IoError> = it
            .map(|s| {
                s.parse::<i32>()
                    .map_err(|_| err(i + 1, "invalid coordinate"))
            })
            .collect();
        let coords = coords?;
        if coords.is_empty() || coords.len() % 2 != 0 {
            return Err(err(i + 1, "pin list must be non-empty x/y pairs"));
        }
        let pins = coords.chunks(2).map(|c| Point::new(c[0], c[1])).collect();
        nets.push(Net::new(name, pins));
    }
    Ok(Design::new(grid, capacity, nets, layers)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ispdlike::{IspdLikeConfig, IspdLikeGenerator};

    #[test]
    fn roundtrip_preserves_everything_relevant() {
        let d = IspdLikeGenerator::new(IspdLikeConfig {
            num_nets: 40,
            width: 24,
            height: 18,
            ..IspdLikeConfig::default()
        })
        .generate()
        .unwrap();
        let text = write_design(&d);
        let parsed = parse_design(&text).unwrap();
        assert_eq!(parsed.grid, d.grid);
        assert_eq!(parsed.num_layers, d.num_layers);
        assert_eq!(parsed.nets, d.nets);
        // Rust float Display is shortest-roundtrip: bit-exact recovery
        assert_eq!(parsed.capacity, d.capacity);
    }

    #[test]
    fn rejects_bad_header() {
        assert!(matches!(
            parse_design("NOT-A-DESIGN\n"),
            Err(IoError::Parse { line: 1, .. })
        ));
    }

    #[test]
    fn rejects_malformed_net_line() {
        let text = "DGR-DESIGN v1\ngrid 4 4 2\ntracks 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1\nnet broken 1\n";
        assert!(matches!(
            parse_design(text),
            Err(IoError::Parse { line: 4, .. })
        ));
    }

    #[test]
    fn rejects_out_of_grid_pin() {
        let text = "DGR-DESIGN v1\ngrid 4 4 2\ntracks 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1\nnet a 0 0 9 9\n";
        assert!(matches!(parse_design(text), Err(IoError::Grid(_))));
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "DGR-DESIGN v1\ngrid 4 4 2\ntracks 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1\n\n# comment\nnet a 0 0 3 3\n";
        let d = parse_design(text).unwrap();
        assert_eq!(d.num_nets(), 1);
    }
}
