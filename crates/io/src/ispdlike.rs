//! ISPD-like synthetic designs: the benchmark substitute for Tables 2–3.
//!
//! Contest circuits are hard to route because of (a) spatially clustered
//! pins (standard-cell rows and IP blocks), (b) macros that block routing
//! resources, (c) hotspot regions where demand concentrates, and (d) pin
//! density eating into edge capacity. This generator reproduces those
//! features with controllable intensity so the congested/uncongested
//! split of the paper's two benchmark suites can be mirrored.

use dgr_grid::{CapacityBuilder, Design, GcellGrid, Net, Point, Rect};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::IoError;

/// Parameters of the ISPD-like generator.
#[derive(Debug, Clone, PartialEq)]
pub struct IspdLikeConfig {
    /// Grid width in g-cells.
    pub width: u32,
    /// Grid height in g-cells.
    pub height: u32,
    /// Number of nets.
    pub num_nets: usize,
    /// Routable layers.
    pub num_layers: u32,
    /// Base tracks per edge (before pin/blockage deductions).
    pub base_capacity: f32,
    /// Number of pin clusters; nets draw their pins near cluster centers.
    pub clusters: usize,
    /// Std-dev of pin spread around a cluster center, in g-cells.
    pub cluster_spread: f64,
    /// Fraction of nets that span two clusters (global wires).
    pub global_net_fraction: f64,
    /// Fraction of nets whose pins are uniform random over the whole die
    /// (the dispersed standard-cell background).
    pub uniform_fraction: f64,
    /// Number of macro blockages (rectangles with reduced capacity).
    pub macros: usize,
    /// Capacity multiplier inside macros (0 = hard blockage).
    pub macro_capacity_factor: f32,
    /// The per-cell `β` weight (Eq. 1/2): scales both the pin-density
    /// capacity deduction and via pressure. Contest LEFs yield small
    /// values; 1.0 would let clustered pins consume entire edges.
    pub pin_beta: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for IspdLikeConfig {
    fn default() -> Self {
        IspdLikeConfig {
            width: 64,
            height: 64,
            num_nets: 1000,
            num_layers: 9,
            base_capacity: 10.0,
            clusters: 8,
            cluster_spread: 4.0,
            global_net_fraction: 0.35,
            uniform_fraction: 0.35,
            macros: 2,
            macro_capacity_factor: 0.3,
            pin_beta: 0.25,
            seed: 1,
        }
    }
}

/// The ISPD-like design generator. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct IspdLikeGenerator {
    config: IspdLikeConfig,
}

impl IspdLikeGenerator {
    /// Creates a generator.
    pub fn new(config: IspdLikeConfig) -> Self {
        IspdLikeGenerator { config }
    }

    /// Generates the design.
    ///
    /// # Errors
    ///
    /// Propagates grid/design validation failures (only possible with
    /// degenerate dimensions).
    pub fn generate(&self) -> Result<Design, IoError> {
        let cfg = &self.config;
        let grid = GcellGrid::new(cfg.width, cfg.height)?;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let bounds = grid.bounds();

        // cluster centers
        let centers: Vec<Point> = (0..cfg.clusters.max(1))
            .map(|_| {
                Point::new(
                    rng.gen_range(0..cfg.width as i32),
                    rng.gen_range(0..cfg.height as i32),
                )
            })
            .collect();

        let sample_near = |rng: &mut StdRng, c: Point, spread: f64| -> Point {
            // Irwin–Hall approximation of a gaussian (sum of uniforms)
            let g = |rng: &mut StdRng| {
                let s: f64 = (0..6).map(|_| rng.gen_range(-0.5..0.5)).sum();
                s * spread
            };
            Point::new(
                (c.x + g(rng).round() as i32).clamp(bounds.lo.x, bounds.hi.x),
                (c.y + g(rng).round() as i32).clamp(bounds.lo.y, bounds.hi.y),
            )
        };

        // nets: mostly local (one cluster), some global (two clusters)
        let mut nets = Vec::with_capacity(cfg.num_nets);
        let mut pin_load: Vec<(Point, u32)> = Vec::new();
        for i in 0..cfg.num_nets {
            let uniform = rng.gen_bool(cfg.uniform_fraction);
            let c1 = centers[rng.gen_range(0..centers.len())];
            let global = rng.gen_bool(cfg.global_net_fraction);
            let c2 = if global {
                centers[rng.gen_range(0..centers.len())]
            } else {
                c1
            };
            // pin count: 2 common, up to 12 rare (contest-like distribution)
            let npins = match rng.gen_range(0..100) {
                0..=54 => 2,
                55..=79 => 3,
                80..=91 => 4,
                92..=96 => rng.gen_range(5..=8),
                _ => rng.gen_range(9..=12),
            };
            let mut pins = Vec::with_capacity(npins);
            if uniform {
                // dispersed background net: a random local neighbourhood
                let c = Point::new(
                    rng.gen_range(0..cfg.width as i32),
                    rng.gen_range(0..cfg.height as i32),
                );
                let spread = cfg.cluster_spread * 2.0;
                for _ in 0..npins {
                    let p = sample_near(&mut rng, c, spread);
                    pins.push(p);
                    pin_load.push((p, 1));
                }
            } else {
                for k in 0..npins {
                    let c = if k % 2 == 0 { c1 } else { c2 };
                    let p = sample_near(&mut rng, c, cfg.cluster_spread);
                    pins.push(p);
                    pin_load.push((p, 1));
                }
            }
            nets.push(Net::new(format!("net{i}"), pins));
        }

        // capacity: base, macro blockages, pin-density load
        let mut builder = CapacityBuilder::uniform(&grid, cfg.base_capacity);
        for _ in 0..cfg.macros {
            let w = rng.gen_range((cfg.width / 12).max(1)..=(cfg.width / 6).max(2)) as i32;
            let h = rng.gen_range((cfg.height / 12).max(1)..=(cfg.height / 6).max(2)) as i32;
            let x = rng.gen_range(0..(cfg.width as i32 - w).max(1));
            let y = rng.gen_range(0..(cfg.height as i32 - h).max(1));
            builder.scale_region(
                &grid,
                Rect::new(Point::new(x, y), Point::new(x + w - 1, y + h - 1)),
                cfg.macro_capacity_factor,
            );
        }
        let mut builder = builder.clone();
        for y in 0..cfg.height as i32 {
            for x in 0..cfg.width as i32 {
                builder = builder.set_beta(&grid, Point::new(x, y), cfg.pin_beta)?;
            }
        }
        for (p, count) in pin_load {
            builder = builder.add_pins(&grid, p, count)?;
        }
        let capacity = builder.build(&grid)?;

        Ok(Design::new(grid, capacity, nets, cfg.num_layers)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_shape() {
        let g = IspdLikeGenerator::new(IspdLikeConfig {
            num_nets: 200,
            ..IspdLikeConfig::default()
        });
        let d = g.generate().unwrap();
        assert_eq!(d.num_nets(), 200);
        assert_eq!(d.num_layers, 9);
        assert!(d.num_pins() >= 400);
        for net in &d.nets {
            assert!(net.pins.len() >= 2);
            for p in &net.pins {
                assert!(d.grid.contains(*p));
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = IspdLikeConfig {
            num_nets: 50,
            ..IspdLikeConfig::default()
        };
        let a = IspdLikeGenerator::new(cfg.clone()).generate().unwrap();
        let b = IspdLikeGenerator::new(cfg.clone()).generate().unwrap();
        assert_eq!(a, b);
        let c = IspdLikeGenerator::new(IspdLikeConfig { seed: 99, ..cfg })
            .generate()
            .unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn macros_reduce_capacity_somewhere() {
        let cfg = IspdLikeConfig {
            num_nets: 10,
            macros: 3,
            macro_capacity_factor: 0.0,
            ..IspdLikeConfig::default()
        };
        let d = IspdLikeGenerator::new(cfg).generate().unwrap();
        let base = 10.0;
        let blocked = d
            .grid
            .edge_ids()
            .filter(|&e| d.capacity.capacity(e) < base * 0.5)
            .count();
        assert!(blocked > 0, "expected blocked edges under macros");
    }

    #[test]
    fn pins_cluster_spatially() {
        // with tiny spread, a local net's pins stay close together
        let cfg = IspdLikeConfig {
            num_nets: 100,
            cluster_spread: 1.0,
            global_net_fraction: 0.0,
            ..IspdLikeConfig::default()
        };
        let d = IspdLikeGenerator::new(cfg).generate().unwrap();
        let avg_hpwl: f64 = d
            .nets
            .iter()
            .map(|n| Rect::bounding(&n.pins).half_perimeter() as f64)
            .sum::<f64>()
            / d.nets.len() as f64;
        assert!(avg_hpwl < 16.0, "local nets too spread out: {avg_hpwl}");
    }
}
