//! The Table-1 synthetic protocol, reproduced from the paper:
//!
//! > "three G-cells are arbitrarily selected within a box for each net,
//! > designating them as pins."
//!
//! Capacities are uniform; the objective of the experiment is pure ReLU
//! overflow, solved by ILP (exact) and DGR.

use dgr_grid::{CapacityBuilder, Design, GcellGrid, Net, Point};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::IoError;

/// Parameters of one Table-1 row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table1Params {
    /// Grid side length (grids are square in the paper).
    pub grid: u32,
    /// Uniform edge capacity `cap_e`.
    pub cap: f32,
    /// Number of nets.
    pub nets: usize,
    /// Side length of the random box each net's pins are drawn from.
    pub box_size: u32,
    /// RNG seed for pin placement.
    pub seed: u64,
}

/// The ten parameter rows of Table 1, in paper order.
///
/// The paper's exact values; runtime scaling (fewer iterations for the
/// largest rows) is a harness decision, not a data decision.
pub fn table1_rows() -> Vec<Table1Params> {
    let rows: [(u32, f32, usize, u32); 10] = [
        (20, 1.0, 20, 4),
        (50, 1.0, 50, 10),
        (50, 1.0, 100, 10),
        (50, 2.0, 100, 10),
        (50, 1.0, 1000, 10),
        (50, 10.0, 1000, 10),
        (50, 10.0, 10_000, 10),
        (100, 2.0, 1000, 20),
        (100, 2.0, 10_000, 20),
        (1000, 1.0, 100_000, 200),
    ];
    rows.iter()
        .map(|&(grid, cap, nets, box_size)| Table1Params {
            grid,
            cap,
            nets,
            box_size,
            seed: 0xDAC_2024,
        })
        .collect()
}

/// Generates the design for one Table-1 row.
///
/// Each net gets a random `box_size × box_size` box (clamped to the
/// grid) and three distinct g-cells inside it as pins.
///
/// # Errors
///
/// Propagates grid/design validation failures (cannot occur for the
/// stock rows).
///
/// # Examples
///
/// ```
/// use dgr_io::{table1_design, Table1Params};
///
/// let design = table1_design(&Table1Params {
///     grid: 20,
///     cap: 1.0,
///     nets: 20,
///     box_size: 4,
///     seed: 7,
/// })?;
/// assert_eq!(design.num_nets(), 20);
/// # Ok::<(), dgr_io::IoError>(())
/// ```
pub fn table1_design(params: &Table1Params) -> Result<Design, IoError> {
    let grid = GcellGrid::new(params.grid, params.grid)?;
    let cap = CapacityBuilder::uniform(&grid, params.cap).build(&grid)?;
    let mut rng = StdRng::seed_from_u64(params.seed);
    let side = params.grid as i32;
    let bx = (params.box_size.max(2).min(params.grid)) as i32;
    let mut nets = Vec::with_capacity(params.nets);
    for i in 0..params.nets {
        let x0 = rng.gen_range(0..=(side - bx).max(0));
        let y0 = rng.gen_range(0..=(side - bx).max(0));
        let mut pins = Vec::with_capacity(3);
        while pins.len() < 3 {
            let p = Point::new(x0 + rng.gen_range(0..bx), y0 + rng.gen_range(0..bx));
            if !pins.contains(&p) {
                pins.push(p);
            }
        }
        nets.push(Net::new(format!("net{i}"), pins));
    }
    // Table 1 is a pure 2D experiment; one layer keeps √L = 1.
    Ok(Design::new(grid, cap, nets, 1)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_rows_matching_the_paper() {
        let rows = table1_rows();
        assert_eq!(rows.len(), 10);
        assert_eq!(rows[0].grid, 20);
        assert_eq!(rows[9].grid, 1000);
        assert_eq!(rows[9].nets, 100_000);
        assert_eq!(rows[5].cap, 10.0);
    }

    #[test]
    fn nets_have_three_distinct_pins_inside_their_box() {
        let params = Table1Params {
            grid: 50,
            cap: 1.0,
            nets: 100,
            box_size: 10,
            seed: 3,
        };
        let d = table1_design(&params).unwrap();
        assert_eq!(d.num_nets(), 100);
        for net in &d.nets {
            assert_eq!(net.pins.len(), 3);
            let bbox = dgr_grid::Rect::bounding(&net.pins);
            assert!(bbox.width() <= 10 && bbox.height() <= 10);
            let distinct: std::collections::HashSet<_> = net.pins.iter().collect();
            assert_eq!(distinct.len(), 3);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let p = Table1Params {
            grid: 20,
            cap: 1.0,
            nets: 20,
            box_size: 4,
            seed: 9,
        };
        assert_eq!(table1_design(&p).unwrap(), table1_design(&p).unwrap());
        let mut p2 = p;
        p2.seed = 10;
        assert_ne!(table1_design(&p).unwrap(), table1_design(&p2).unwrap());
    }

    #[test]
    fn tiny_grid_with_box_larger_than_grid() {
        let p = Table1Params {
            grid: 3,
            cap: 1.0,
            nets: 4,
            box_size: 10,
            seed: 0,
        };
        let d = table1_design(&p).unwrap();
        for net in &d.nets {
            for pin in &net.pins {
                assert!(d.grid.contains(*pin));
            }
        }
    }
}
