//! Named testcases mirroring the paper's benchmark lists.
//!
//! The original ISPD'18/'19 circuits range from 72 k to 895 k nets; this
//! catalog reproduces each case's *role* (congested vs. comfortable,
//! small vs. large, 5-layer vs. 9-layer) at roughly 1/40 scale so the
//! full experiment suite runs on a laptop CPU. The per-case mapping is
//! documented in `EXPERIMENTS.md`; the qualitative comparisons (who wins
//! on overflow/wirelength/vias) are scale-invariant, absolute numbers
//! are not.

use crate::ispdlike::IspdLikeConfig;

/// A named benchmark entry.
#[derive(Debug, Clone, PartialEq)]
pub struct CatalogCase {
    /// Case name (paper's testcase id).
    pub name: &'static str,
    /// Generator parameters.
    pub config: IspdLikeConfig,
    /// Whether this is one of the paper's "most congested" 5-layer cases.
    pub congested: bool,
}

#[allow(clippy::too_many_arguments)] // mirrors the table columns
fn case(
    name: &'static str,
    width: u32,
    height: u32,
    num_nets: usize,
    num_layers: u32,
    base_capacity: f32,
    macros: usize,
    congested: bool,
    seed: u64,
) -> CatalogCase {
    CatalogCase {
        name,
        config: IspdLikeConfig {
            width,
            height,
            num_nets,
            num_layers,
            base_capacity,
            // cluster count scales with the netlist so per-cluster pin
            // density (and hence hotspot intensity) is scale-invariant
            clusters: (num_nets / 75).max(6),
            cluster_spread: (width.min(height) as f64) / if congested { 8.0 } else { 12.0 },
            global_net_fraction: if congested { 0.30 } else { 0.25 },
            uniform_fraction: 0.45,
            macros,
            macro_capacity_factor: if congested { 0.55 } else { 0.6 },
            pin_beta: 0.25,
            seed,
        },
        congested,
    }
}

/// The six "most congested 5-layer" cases of Table 2, scaled.
pub fn congested_cases() -> Vec<CatalogCase> {
    vec![
        case("ispd18_5m", 62, 61, 1800, 5, 15.0, 3, true, 185),
        case("ispd18_8m", 90, 88, 4500, 5, 25.0, 3, true, 188),
        case("ispd18_10m", 61, 52, 4600, 5, 36.0, 4, true, 1810),
        case("ispd19_7m", 105, 101, 9000, 5, 43.0, 4, true, 197),
        case("ispd19_8m", 120, 114, 13500, 5, 52.0, 4, true, 198),
        case("ispd19_9m", 134, 143, 22000, 5, 74.0, 5, true, 199),
    ]
}

/// The ten ISPD'18 cases of Table 3, scaled.
pub fn ispd18_cases() -> Vec<CatalogCase> {
    vec![
        case("ispd18_test1", 32, 32, 300, 9, 10.0, 1, false, 1),
        case("ispd18_test2", 64, 64, 800, 9, 10.0, 1, false, 2),
        case("ispd18_test3", 64, 64, 900, 9, 10.0, 2, false, 3),
        case("ispd18_test4", 80, 80, 1600, 9, 11.0, 2, false, 4),
        case("ispd18_test5", 80, 80, 1800, 9, 12.0, 2, false, 5),
        case("ispd18_test6", 96, 96, 2400, 9, 12.0, 2, false, 6),
        case("ispd18_test7", 108, 108, 3600, 9, 14.0, 3, false, 7),
        case("ispd18_test8", 108, 108, 3700, 9, 15.0, 3, false, 8),
        case("ispd18_test9", 108, 108, 3400, 9, 17.0, 3, false, 9),
        case("ispd18_test10", 120, 120, 4500, 9, 16.0, 3, false, 10),
    ]
}

/// Looks up a case by name across both suites.
pub fn catalog_case(name: &str) -> Option<CatalogCase> {
    congested_cases()
        .into_iter()
        .chain(ispd18_cases())
        .find(|c| c.name == name)
}

/// The names of every catalog case, congested suite first.
pub fn catalog_names() -> Vec<&'static str> {
    congested_cases()
        .into_iter()
        .chain(ispd18_cases())
        .map(|c| c.name)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ispdlike::IspdLikeGenerator;

    #[test]
    fn catalog_names_match_the_paper() {
        let congested = congested_cases();
        assert_eq!(congested.len(), 6);
        assert!(congested.iter().all(|c| c.config.num_layers == 5));
        assert!(congested.iter().all(|c| c.congested));
        let ispd18 = ispd18_cases();
        assert_eq!(ispd18.len(), 10);
        assert!(ispd18.iter().all(|c| !c.congested));
    }

    #[test]
    fn lookup_by_name() {
        assert!(catalog_case("ispd19_7m").is_some());
        assert!(catalog_case("ispd18_test5").is_some());
        assert!(catalog_case("ispd20_fake").is_none());
    }

    #[test]
    fn cases_scale_monotonically_within_suites() {
        let ispd18 = ispd18_cases();
        assert!(ispd18[0].config.num_nets < ispd18[9].config.num_nets);
        let congested = congested_cases();
        assert!(congested[0].config.num_nets < congested[5].config.num_nets);
    }

    #[test]
    fn smallest_cases_generate_quickly_and_validly() {
        for c in [catalog_case("ispd18_test1").unwrap(), {
            let mut c = catalog_case("ispd18_5m").unwrap();
            c.config.num_nets = 100; // shrink for test speed
            c
        }] {
            let d = IspdLikeGenerator::new(c.config.clone()).generate().unwrap();
            assert_eq!(d.num_nets(), c.config.num_nets);
            assert_eq!(d.num_layers, c.config.num_layers);
        }
    }
}
