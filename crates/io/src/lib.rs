#![warn(missing_docs)]

//! Benchmark generation and design I/O — the substitute for the ISPD'18
//! and ISPD'19 contest benchmarks.
//!
//! The contest LEF/DEF tarballs are not redistributable, so this crate
//! generates synthetic designs that preserve the properties the paper's
//! experiments measure:
//!
//! * [`synthetic`] — the **Table-1 protocol**, reproduced verbatim from
//!   the paper: per net, three random g-cells inside a random box, with a
//!   uniform edge capacity,
//! * [`ispdlike`] — **ISPD-like designs**: clustered pins, macro-shaped
//!   capacity holes, congestion hotspots, pin-density load — the features
//!   that make congested contest cases hard,
//! * [`catalog`] — named testcases mirroring the paper's benchmark lists
//!   (`ispd18_test1..10`, `ispd18_5m`, … `ispd19_9m`) at laptop-friendly
//!   scale (per-case dimensions documented in `EXPERIMENTS.md`),
//! * [`mod@format`] — a plain-text design format with round-trip parsing.

pub mod catalog;
pub mod format;
pub mod ispdlike;
pub mod synthetic;

pub use catalog::{catalog_case, catalog_names, congested_cases, ispd18_cases, CatalogCase};
pub use format::{parse_design, write_design};
pub use ispdlike::{IspdLikeConfig, IspdLikeGenerator};
pub use synthetic::{table1_design, table1_rows, Table1Params};

/// Errors produced while generating or parsing designs.
#[derive(Debug)]
pub enum IoError {
    /// Underlying grid/design validation failure.
    Grid(dgr_grid::GridError),
    /// The text being parsed is not a valid design file.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Grid(e) => write!(f, "design validation failed: {e}"),
            IoError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for IoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IoError::Grid(e) => Some(e),
            IoError::Parse { .. } => None,
        }
    }
}

impl From<dgr_grid::GridError> for IoError {
    fn from(e: dgr_grid::GridError) -> Self {
        IoError::Grid(e)
    }
}
